package perf

import (
	"fmt"
	"sort"
	"time"
)

// Kind names a scenario's execution shape.
type Kind string

const (
	// KindKernel times a single backend kernel or training step, one
	// serial call per operation.
	KindKernel Kind = "kernel"
	// KindServeClosed drives serve.Server over HTTP closed-loop: a fixed
	// set of workers each keeps exactly one request in flight.
	KindServeClosed Kind = "serve-closed"
	// KindServeOpen drives serve.Server over HTTP open-loop: requests are
	// dispatched on a fixed schedule at TargetRPS regardless of
	// completions, so queueing delay shows up in the percentiles.
	KindServeOpen Kind = "serve-open"
	// KindStream measures the stream pipeline's steady-state ingest rate
	// after warmup/bootstrap, one event per operation.
	KindStream Kind = "stream"
	// KindAllreduce times the distributed fabric's headline collective
	// (AllreduceMean) over an in-process world of Ranks ranks on the chosen
	// Transport, one collective per operation — the payload/rank sweep
	// behind BENCH_scaling.json (DESIGN.md §10).
	KindAllreduce Kind = "allreduce"
	// KindTrainScale measures end-to-end distributed BCPNN training
	// throughput (events/s across all ranks, one unsupervised plus one
	// supervised epoch per pass) over core.DistributedTrainer on the chosen
	// Transport.
	KindTrainScale Kind = "trainscale"
	// KindFleetClosed drives a streambrain-router front door over Replicas
	// in-process serve replicas closed-loop — the horizontal-scaling sweep
	// behind BENCH_fleet.json (DESIGN.md §13).
	KindFleetClosed Kind = "fleet-closed"
	// KindFleetOpen is the open-loop twin: fixed-schedule dispatch at
	// TargetRPS through the router, so fan-out queueing shows in p99.
	KindFleetOpen Kind = "fleet-open"
)

// Scenario is one declarative perf measurement. Which fields matter depends
// on Kind; Validate enforces the combination. Iteration counts are pinned
// (never time-based) so a suite does identical work on every machine and
// CI run — the property that makes BENCH_*.json files diffable.
type Scenario struct {
	// Name uniquely identifies the scenario inside its suite; benchgate
	// matches baseline and current results by it.
	Name string `json:"name"`
	Kind Kind   `json:"kind"`

	// Kernel scenarios: Op is "gemm" (MatMul at Size×Size), "trace" (the
	// fused OneHotOuterLerp batch trace update), or "trainstep" (one full
	// unsupervised BCPNN batch step). Backend names the compute backend;
	// Iters is the pinned operation count.
	Op      string `json:"op,omitempty"`
	Backend string `json:"backend,omitempty"`
	Size    int    `json:"size,omitempty"`
	Iters   int    `json:"iters,omitempty"`

	// Precision selects the kernel element width for kernel scenarios:
	// "" or "f64" runs the float64 kernel set, "f32" the float32 one.
	// An explicit value ("f64"/"f32") runs the backend-level synthetic
	// kernel sequence for gemm/trace/trainstep, so the two precisions of a
	// scenario pair do identical work and their throughput ratio isolates
	// the element width — the paper's reduced-precision claim as a number.
	// ("" keeps the legacy core-driven trainstep for baseline continuity.)
	Precision string `json:"precision,omitempty"`

	// Sparsity gives a trainstep scenario a receptive-field mask silencing
	// this fraction of input hypercolumns per HCU (K = round((1−s)·Fi)
	// active), the state the structural prune/regrow schedule (DESIGN.md
	// §15) leaves behind. Sparse then selects the compute regime over that
	// mask: false runs the dense-masked kernel sequence (every block still
	// computed — the semantics twin), true the block-sparse one (silent
	// blocks skipped via the compressed block index). A dense/sparse
	// scenario pair shares one mask and model shape, so its within-run
	// throughput ratio IS the measured structural-sparsity speedup the
	// benchgate floors (-min-sparse-speedup).
	Sparsity float64 `json:"sparsity,omitempty"`
	Sparse   bool    `json:"sparse,omitempty"`

	// Serve scenarios: Concurrency workers (closed loop), Requests total
	// HTTP requests, BatchSize events per request, TargetRPS the open-loop
	// dispatch rate. Wire selects the predict codec: "" or "json" posts
	// JSON bodies, "binary" posts length-prefixed wire frames
	// (Content-Type application/x-streambrain-frame, DESIGN.md §12) — the
	// json/binary twin scenarios in the "serve" suite measure the protocol
	// gap under identical load.
	Concurrency int     `json:"concurrency,omitempty"`
	BatchSize   int     `json:"batch_size,omitempty"`
	Requests    int     `json:"requests,omitempty"`
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Wire        string  `json:"wire,omitempty"`

	// Stream scenarios: Warmup events buffered for bootstrap, then Events
	// steady-state events measured.
	Events int `json:"events,omitempty"`
	Warmup int `json:"warmup,omitempty"`

	// MCUs sizes the model for trainstep/serve/stream scenarios
	// (default 100). Small models keep smoke suites inside CI budgets.
	MCUs int `json:"mcus,omitempty"`

	// Scaling scenarios (allreduce, trainscale): Ranks is the world size and
	// Transport the fabric ("chan" or "tcp" — goroutine ranks either way,
	// but tcp pays the real loopback socket, frame codec, and demux costs).
	// Floats is the allreduce payload length; trainscale reuses Events for
	// the dataset size and MCUs for the model.
	Ranks     int    `json:"ranks,omitempty"`
	Transport string `json:"transport,omitempty"`
	Floats    int    `json:"floats,omitempty"`

	// Fleet scenarios (fleet-closed, fleet-open): Replicas is the number of
	// serve replicas behind the router; KillOne hard-kills one replica
	// halfway through the request count (single measurement pass — the dead
	// replica cannot be resurrected between passes) to measure the client-
	// visible cost of a mid-run replica death.
	Replicas int  `json:"replicas,omitempty"`
	KillOne  bool `json:"kill_one,omitempty"`
}

// Validate reports the first malformed field for the scenario's kind.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("perf: scenario with empty name")
	}
	switch s.Kind {
	case KindKernel:
		switch s.Op {
		case "gemm":
			if s.Size <= 0 {
				return fmt.Errorf("perf: %s: gemm needs Size > 0", s.Name)
			}
		case "trace", "trainstep":
		default:
			return fmt.Errorf("perf: %s: unknown kernel op %q", s.Name, s.Op)
		}
		if s.Backend == "" {
			return fmt.Errorf("perf: %s: kernel needs a backend", s.Name)
		}
		if s.Iters <= 0 {
			return fmt.Errorf("perf: %s: kernel needs Iters > 0", s.Name)
		}
		switch s.Precision {
		case "", "f64", "f32":
		default:
			return fmt.Errorf("perf: %s: unknown precision %q (want f64 or f32)", s.Name, s.Precision)
		}
		if s.Sparsity < 0 || s.Sparsity >= 1 {
			return fmt.Errorf("perf: %s: Sparsity = %v, need [0,1)", s.Name, s.Sparsity)
		}
		if (s.Sparsity > 0 || s.Sparse) && s.Op != "trainstep" {
			return fmt.Errorf("perf: %s: sparsity only applies to the trainstep op", s.Name)
		}
		if (s.Sparsity > 0 || s.Sparse) && s.Precision == "" {
			return fmt.Errorf("perf: %s: sparse trainstep needs an explicit precision "+
				"(the legacy core-driven trainstep has no mask fixture)", s.Name)
		}
	case KindServeClosed:
		if s.Concurrency <= 0 || s.Requests <= 0 {
			return fmt.Errorf("perf: %s: closed loop needs Concurrency and Requests > 0", s.Name)
		}
		if err := validWire(s.Name, s.Wire); err != nil {
			return err
		}
	case KindServeOpen:
		if s.TargetRPS <= 0 || s.Requests <= 0 {
			return fmt.Errorf("perf: %s: open loop needs TargetRPS and Requests > 0", s.Name)
		}
		if err := validWire(s.Name, s.Wire); err != nil {
			return err
		}
	case KindStream:
		if s.Events <= 0 {
			return fmt.Errorf("perf: %s: stream needs Events > 0", s.Name)
		}
	case KindAllreduce:
		if s.Ranks < 1 {
			return fmt.Errorf("perf: %s: allreduce needs Ranks >= 1", s.Name)
		}
		if s.Floats <= 0 || s.Iters <= 0 {
			return fmt.Errorf("perf: %s: allreduce needs Floats and Iters > 0", s.Name)
		}
		if err := validTransport(s.Name, s.Transport); err != nil {
			return err
		}
	case KindTrainScale:
		if s.Ranks < 1 {
			return fmt.Errorf("perf: %s: trainscale needs Ranks >= 1", s.Name)
		}
		if s.Events <= 0 {
			return fmt.Errorf("perf: %s: trainscale needs Events > 0", s.Name)
		}
		if err := validTransport(s.Name, s.Transport); err != nil {
			return err
		}
	case KindFleetClosed, KindFleetOpen:
		if s.Replicas < 1 {
			return fmt.Errorf("perf: %s: fleet needs Replicas >= 1", s.Name)
		}
		if s.Kind == KindFleetClosed && (s.Concurrency <= 0 || s.Requests <= 0) {
			return fmt.Errorf("perf: %s: closed loop needs Concurrency and Requests > 0", s.Name)
		}
		if s.Kind == KindFleetOpen && (s.TargetRPS <= 0 || s.Requests <= 0) {
			return fmt.Errorf("perf: %s: open loop needs TargetRPS and Requests > 0", s.Name)
		}
		if s.KillOne && s.Replicas < 2 {
			return fmt.Errorf("perf: %s: kill-one needs Replicas >= 2 (someone has to survive)", s.Name)
		}
		if err := validWire(s.Name, s.Wire); err != nil {
			return err
		}
	default:
		return fmt.Errorf("perf: %s: unknown kind %q", s.Name, s.Kind)
	}
	return nil
}

// validWire rejects predict codecs the serve runner does not know.
func validWire(name, wire string) error {
	switch wire {
	case "", "json", "binary":
		return nil
	}
	return fmt.Errorf("perf: %s: unknown wire %q (want json or binary)", name, wire)
}

// validTransport rejects fabrics the scaling runners do not know.
func validTransport(name, transport string) error {
	switch transport {
	case "chan", "tcp":
		return nil
	}
	return fmt.Errorf("perf: %s: unknown transport %q (want chan or tcp)", name, transport)
}

// interval returns the open-loop dispatch period.
func (s Scenario) interval() time.Duration {
	return time.Duration(float64(time.Second) / s.TargetRPS)
}

// Suites returns the sorted names of the built-in suites.
func Suites() []string {
	names := make([]string, 0, len(suites))
	for n := range suites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SuiteByName resolves a built-in suite and validates every scenario in it.
func SuiteByName(name string) ([]Scenario, error) {
	scs, ok := suites[name]
	if !ok {
		return nil, fmt.Errorf("perf: unknown suite %q (have %v)", name, Suites())
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("perf: suite %s: duplicate scenario %q", name, sc.Name)
		}
		seen[sc.Name] = true
	}
	return scs, nil
}

// suites are the built-in suites. "smoke" is sized for a CI gate (<3 min on
// one runner core, pinned iteration counts); "full" is the same coverage at
// measurement scale for local baselining of real optimization work.
var suites = map[string][]Scenario{
	"smoke": {
		{Name: "gemm/naive/128", Kind: KindKernel, Op: "gemm", Backend: "naive", Size: 128, Iters: 30},
		{Name: "gemm/parallel/256", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 256, Iters: 30},
		{Name: "gemm/gpusim/256", Kind: KindKernel, Op: "gemm", Backend: "gpusim", Size: 256, Iters: 30},
		{Name: "trace/naive", Kind: KindKernel, Op: "trace", Backend: "naive", Iters: 40},
		{Name: "trace/parallel", Kind: KindKernel, Op: "trace", Backend: "parallel", Iters: 40},
		{Name: "trainstep/parallel", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 40, MCUs: 200},
		// Reduced-precision twins of the hot kernels, so the CI gate
		// (tools/benchgate) protects the float32 path too.
		{Name: "gemm/parallel/256/f32", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 256, Iters: 30, Precision: "f32"},
		{Name: "trainstep/parallel/f32", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 40, MCUs: 200, Precision: "f32"},
		{Name: "serve/closed/c8b4", Kind: KindServeClosed, Concurrency: 8, BatchSize: 4, Requests: 400, MCUs: 50},
		{Name: "serve/open/200rps", Kind: KindServeOpen, TargetRPS: 200, BatchSize: 1, Requests: 400, MCUs: 50},
		// Events sized so one measurement pass spans a few hundred ms:
		// a span a single GC cycle or scheduler preemption cannot move
		// by the gate's 15% threshold.
		{Name: "stream/steady", Kind: KindStream, Warmup: 512, Events: 24576, MCUs: 50},
	},
	"full": {
		{Name: "gemm/naive/128", Kind: KindKernel, Op: "gemm", Backend: "naive", Size: 128, Iters: 30},
		{Name: "gemm/parallel/512", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 512, Iters: 20},
		{Name: "gemm/gpusim/512", Kind: KindKernel, Op: "gemm", Backend: "gpusim", Size: 512, Iters: 20},
		{Name: "trace/naive", Kind: KindKernel, Op: "trace", Backend: "naive", Iters: 50},
		{Name: "trace/parallel", Kind: KindKernel, Op: "trace", Backend: "parallel", Iters: 50},
		{Name: "trainstep/parallel", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 1000},
		{Name: "trainstep/gpusim", Kind: KindKernel, Op: "trainstep", Backend: "gpusim", Iters: 30, MCUs: 1000},
		{Name: "serve/closed/c32b8", Kind: KindServeClosed, Concurrency: 32, BatchSize: 8, Requests: 4000, MCUs: 300},
		{Name: "serve/open/1000rps", Kind: KindServeOpen, TargetRPS: 1000, BatchSize: 1, Requests: 5000, MCUs: 300},
		{Name: "stream/steady", Kind: KindStream, Warmup: 2048, Events: 8192, MCUs: 300},
	},
	// "kernels" is the precision sweep behind BENCH_kernels.json: every hot
	// kernel at f64 and f32 with identical pinned work, per backend. The
	// f32/f64 throughput ratio of a pair is the measured reduced-precision
	// speedup (the paper's bfloat16/posit argument in CI-runnable form).
	"kernels": {
		{Name: "gemm/naive/256/f64", Kind: KindKernel, Op: "gemm", Backend: "naive", Size: 256, Iters: 20, Precision: "f64"},
		{Name: "gemm/naive/256/f32", Kind: KindKernel, Op: "gemm", Backend: "naive", Size: 256, Iters: 20, Precision: "f32"},
		{Name: "gemm/parallel/256/f64", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 256, Iters: 30, Precision: "f64"},
		{Name: "gemm/parallel/256/f32", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 256, Iters: 30, Precision: "f32"},
		{Name: "gemm/parallel/512/f64", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 512, Iters: 10, Precision: "f64"},
		{Name: "gemm/parallel/512/f32", Kind: KindKernel, Op: "gemm", Backend: "parallel", Size: 512, Iters: 10, Precision: "f32"},
		{Name: "gemm/gpusim/256/f64", Kind: KindKernel, Op: "gemm", Backend: "gpusim", Size: 256, Iters: 20, Precision: "f64"},
		{Name: "gemm/gpusim/256/f32", Kind: KindKernel, Op: "gemm", Backend: "gpusim", Size: 256, Iters: 20, Precision: "f32"},
		{Name: "trace/parallel/f64", Kind: KindKernel, Op: "trace", Backend: "parallel", Iters: 40, Precision: "f64"},
		{Name: "trace/parallel/f32", Kind: KindKernel, Op: "trace", Backend: "parallel", Iters: 40, Precision: "f32"},
		{Name: "trainstep/parallel/f64", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f64"},
		{Name: "trainstep/parallel/f32", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f32"},
		// Whole-layer offload twins (DESIGN.md §14): same pinned work through
		// the fused backend. gemm/trace exercise its composed kernels (they
		// are the parallel worker team); trainstep runs the one-call
		// LayerStep, and the fused/parallel trainstep ratio is the fusion
		// speedup benchgate floors within-run (-min-fused-speedup).
		{Name: "gemm/fused/256/f64", Kind: KindKernel, Op: "gemm", Backend: "fused", Size: 256, Iters: 30, Precision: "f64"},
		{Name: "gemm/fused/256/f32", Kind: KindKernel, Op: "gemm", Backend: "fused", Size: 256, Iters: 30, Precision: "f32"},
		{Name: "trace/fused/f64", Kind: KindKernel, Op: "trace", Backend: "fused", Iters: 40, Precision: "f64"},
		{Name: "trace/fused/f32", Kind: KindKernel, Op: "trace", Backend: "fused", Iters: 40, Precision: "f32"},
		{Name: "trainstep/fused/f64", Kind: KindKernel, Op: "trainstep", Backend: "fused", Iters: 30, MCUs: 200, Precision: "f64"},
		{Name: "trainstep/fused/f32", Kind: KindKernel, Op: "trainstep", Backend: "fused", Iters: 30, MCUs: 200, Precision: "f32"},
	},
	// "sparse" is the structural-sparsity sweep behind BENCH_sparse.json
	// (DESIGN.md §15): trainstep twin pairs sharing one pruned receptive-
	// field mask, run dense-masked (every block computed, silent W blocks
	// re-zeroed — what the schedule costs without the sparse kernels) and
	// block-sparse (silent blocks skipped via the compressed index). The
	// sparse/dense throughput ratio of a pair is the measured prune/regrow
	// speedup; benchgate floors the f64 ratio at ≥80% sparsity within-run
	// (-min-sparse-speedup), the compute half of the E10 claim — the AUC
	// half is the experiment's own ±0.01 twin bound. The s50 and f32 pairs
	// are informational: at half sparsity the skipped fraction is too small
	// for the floor, and the f32 pair shares the fast Log32 kernels so its
	// ratio mostly measures cache footprint.
	"sparse": {
		{Name: "trainstep/dense/f64/s80", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f64", Sparsity: 0.8},
		{Name: "trainstep/sparse/f64/s80", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f64", Sparsity: 0.8, Sparse: true},
		{Name: "trainstep/dense/f32/s80", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f32", Sparsity: 0.8},
		{Name: "trainstep/sparse/f32/s80", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f32", Sparsity: 0.8, Sparse: true},
		{Name: "trainstep/dense/f64/s50", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f64", Sparsity: 0.5},
		{Name: "trainstep/sparse/f64/s50", Kind: KindKernel, Op: "trainstep", Backend: "parallel", Iters: 30, MCUs: 200, Precision: "f64", Sparsity: 0.5, Sparse: true},
	},
	// "serve" is the predict-protocol sweep behind BENCH_serve.json
	// (DESIGN.md §12): json/binary twin scenarios under identical closed-
	// and open-loop load, so the throughput and allocs/op gap between a
	// pair is the measured cost of the JSON codec path. benchgate diffs it
	// against perf/baseline_serve.json, with the allocs/op gate keeping the
	// pooled binary hot path allocation-free.
	"serve": {
		{Name: "serve/json/closed/c8b16", Kind: KindServeClosed, Wire: "json", Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 100},
		{Name: "serve/binary/closed/c8b16", Kind: KindServeClosed, Wire: "binary", Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 100},
		{Name: "serve/json/open/300rps", Kind: KindServeOpen, Wire: "json", TargetRPS: 300, BatchSize: 4, Requests: 600, MCUs: 100},
		{Name: "serve/binary/open/300rps", Kind: KindServeOpen, Wire: "binary", TargetRPS: 300, BatchSize: 4, Requests: 600, MCUs: 100},
	},
	// "scaling" is the distributed-fabric sweep behind BENCH_scaling.json
	// (DESIGN.md §10): the trace-merge collective across payload sizes and
	// rank counts on both transports, plus end-to-end data-parallel train
	// throughput at 1/2/4/8 ranks. The chan/tcp ratio of a scenario pair is
	// the measured cost of making the fabric transport-real; the rank sweep
	// is the weak-scaling story of the StreamBrain paper in CI-runnable
	// form. Payloads are sized around the headline trace merge
	// (280 inputs × MCUs floats).
	"scaling": {
		{Name: "allreduce/chan/r4/4k", Kind: KindAllreduce, Transport: "chan", Ranks: 4, Floats: 4096, Iters: 200},
		{Name: "allreduce/tcp/r4/4k", Kind: KindAllreduce, Transport: "tcp", Ranks: 4, Floats: 4096, Iters: 200},
		{Name: "allreduce/chan/r4/64k", Kind: KindAllreduce, Transport: "chan", Ranks: 4, Floats: 65536, Iters: 60},
		{Name: "allreduce/tcp/r4/64k", Kind: KindAllreduce, Transport: "tcp", Ranks: 4, Floats: 65536, Iters: 60},
		{Name: "allreduce/chan/r4/512k", Kind: KindAllreduce, Transport: "chan", Ranks: 4, Floats: 524288, Iters: 15},
		{Name: "allreduce/tcp/r4/512k", Kind: KindAllreduce, Transport: "tcp", Ranks: 4, Floats: 524288, Iters: 15},
		{Name: "allreduce/chan/r2/64k", Kind: KindAllreduce, Transport: "chan", Ranks: 2, Floats: 65536, Iters: 60},
		{Name: "allreduce/tcp/r2/64k", Kind: KindAllreduce, Transport: "tcp", Ranks: 2, Floats: 65536, Iters: 60},
		{Name: "allreduce/chan/r8/64k", Kind: KindAllreduce, Transport: "chan", Ranks: 8, Floats: 65536, Iters: 60},
		{Name: "allreduce/tcp/r8/64k", Kind: KindAllreduce, Transport: "tcp", Ranks: 8, Floats: 65536, Iters: 60},
		{Name: "train/chan/r1", Kind: KindTrainScale, Transport: "chan", Ranks: 1, Events: 4096, MCUs: 50},
		{Name: "train/chan/r2", Kind: KindTrainScale, Transport: "chan", Ranks: 2, Events: 4096, MCUs: 50},
		{Name: "train/chan/r4", Kind: KindTrainScale, Transport: "chan", Ranks: 4, Events: 4096, MCUs: 50},
		{Name: "train/chan/r8", Kind: KindTrainScale, Transport: "chan", Ranks: 8, Events: 4096, MCUs: 50},
		{Name: "train/tcp/r1", Kind: KindTrainScale, Transport: "tcp", Ranks: 1, Events: 4096, MCUs: 50},
		{Name: "train/tcp/r2", Kind: KindTrainScale, Transport: "tcp", Ranks: 2, Events: 4096, MCUs: 50},
		{Name: "train/tcp/r4", Kind: KindTrainScale, Transport: "tcp", Ranks: 4, Events: 4096, MCUs: 50},
		{Name: "train/tcp/r8", Kind: KindTrainScale, Transport: "tcp", Ranks: 8, Events: 4096, MCUs: 50},
	},
	// "fleet" is the horizontal-serving sweep behind BENCH_fleet.json
	// (DESIGN.md §13): the router front door over 1/2/4 replicas, closed and
	// open loop, plus a kill-one-replica run. The replica-count trio shares
	// one load shape, so the r2/r1 and r4/r1 throughput ratios ARE the
	// measured fan-out scaling; the kill-one scenario's error count is the
	// client-visible cost of a replica death (the retry path keeps it at
	// zero). The fixture pins one router connection per replica so each
	// replica's capacity is bounded by its batching window, not by CPU —
	// scaling then measures the fan-out tier, which is what this suite is
	// for, and stays honest on a single-core CI runner.
	"fleet": {
		{Name: "fleet/binary/closed/r1", Kind: KindFleetClosed, Wire: "binary", Replicas: 1, Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 50},
		{Name: "fleet/binary/closed/r2", Kind: KindFleetClosed, Wire: "binary", Replicas: 2, Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 50},
		{Name: "fleet/binary/closed/r4", Kind: KindFleetClosed, Wire: "binary", Replicas: 4, Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 50},
		{Name: "fleet/json/closed/r2", Kind: KindFleetClosed, Wire: "json", Replicas: 2, Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 50},
		{Name: "fleet/binary/open/r2/300rps", Kind: KindFleetOpen, Wire: "binary", Replicas: 2, TargetRPS: 300, BatchSize: 4, Requests: 600, MCUs: 50},
		{Name: "fleet/binary/killone/r2", Kind: KindFleetClosed, Wire: "binary", Replicas: 2, Concurrency: 8, BatchSize: 16, Requests: 600, MCUs: 50, KillOne: true},
	},
}
