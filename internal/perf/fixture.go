package perf

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/serve"
)

// fixtureEvents is how many synthetic Higgs events fixtures train on and
// load generators replay. Small on purpose: the fixture's job is to make
// the serving path do representative work, not to reach paper accuracy.
const fixtureEvents = 2000

// fixtureParams sizes a quick-to-train model for serve/stream scenarios.
func fixtureParams(mcus int) core.Params {
	p := core.DefaultParams()
	if mcus <= 0 {
		mcus = 100
	}
	p.MCUs = mcus
	p.ReceptiveField = 0.40
	p.UnsupervisedEpochs = 2
	p.SupervisedEpochs = 2
	p.Seed = 1
	return p
}

// trainFixtureBundle trains a small model and returns its serialized bundle
// bytes plus the raw feature vectors the load generator replays.
func trainFixtureBundle(mcus int) (raw []byte, events [][]float64, err error) {
	ds := higgs.Generate(fixtureEvents, 0.5, 1)
	enc := data.FitEncoder(ds, 10)
	encoded := enc.Transform(ds)
	p := fixtureParams(mcus)
	net := core.NewNetwork(backend.MustNew("parallel", 0),
		encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p)
	net.Train(encoded)
	var buf bytes.Buffer
	if err := serve.SaveBundle(&buf, net, enc); err != nil {
		return nil, nil, fmt.Errorf("perf: fixture bundle: %w", err)
	}
	events = make([][]float64, ds.Len())
	for i := range events {
		events[i] = ds.X.Row(i)
	}
	return buf.Bytes(), events, nil
}

// serveFixture is a live HTTP prediction service wrapped around a fixture
// model, plus the events to throw at it.
type serveFixture struct {
	url    string
	events [][]float64
	close  func()
}

// newServeFixture trains the fixture model and starts serve.Server on a
// loopback httptest listener — the real HTTP stack, JSON codec, batcher,
// and registry, exactly what production requests traverse.
func newServeFixture(mcus int) (*serveFixture, error) {
	raw, events, err := trainFixtureBundle(mcus)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry(1, serve.NamedBackendFactory("parallel", 0))
	if err := reg.LoadBytes(raw, "perf-fixture", time.Now()); err != nil {
		return nil, fmt.Errorf("perf: fixture load: %w", err)
	}
	srv := serve.NewServer(reg, serve.ServerConfig{}, "")
	ts := httptest.NewServer(srv.Handler())
	return &serveFixture{
		url:    ts.URL,
		events: events,
		close: func() {
			ts.Close()
			srv.Close()
		},
	}, nil
}
