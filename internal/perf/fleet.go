package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"streambrain/internal/fleet"
	"streambrain/internal/perf/hist"
	"streambrain/internal/serve"
	"streambrain/internal/serve/wire"
)

// --------------------------------------------------------------- fleet load
//
// The fleet scenarios measure the horizontal tier (DESIGN.md §13): a real
// streambrain-router Handler over N real serve replicas, all on loopback
// HTTP. The fixture pins ONE router connection per replica, which makes each
// replica's per-connection capacity latency-bound — a lone in-flight frame
// never fills the batcher's MaxBatch, so it always pays the full MaxWait
// coalescing window, and the replica sits mostly idle between frames. That
// is the deliberate design: replicas' idle windows overlap, so adding a
// replica adds capacity even on a single-core runner, and the r2/r1 ratio
// measures the fan-out tier's scaling rather than the host's core count.

// fleetFixture is a router front door over N in-process serve replicas.
type fleetFixture struct {
	url      string
	events   [][]float64
	router   *fleet.Router
	replicas []*httptest.Server
	servers  []*serve.Server
	front    *httptest.Server
}

// newFleetFixture trains one fixture model and boots Replicas copies of it
// behind a router. Every replica runs the default batcher configuration
// (the window the single-connection design leans on).
func newFleetFixture(mcus, replicas int) (*fleetFixture, error) {
	raw, events, err := trainFixtureBundle(mcus)
	if err != nil {
		return nil, err
	}
	fx := &fleetFixture{events: events}
	pool := fleet.NewPool(fleet.Config{
		ConnsPerReplica: 1,
		HealthEvery:     100 * time.Millisecond,
		FailAfter:       1,
		TraceEvery:      -1,
	})
	for i := 0; i < replicas; i++ {
		reg := serve.NewRegistry(1, serve.NamedBackendFactory("parallel", 0))
		if err := reg.LoadBytes(raw, fmt.Sprintf("perf-fleet-%d", i), time.Now()); err != nil {
			fx.close()
			return nil, fmt.Errorf("perf: fleet fixture load: %w", err)
		}
		srv := serve.NewServer(reg, serve.ServerConfig{}, "")
		ts := httptest.NewServer(srv.Handler())
		fx.servers = append(fx.servers, srv)
		fx.replicas = append(fx.replicas, ts)
		pool.Add(ts.Listener.Addr().String())
	}
	fx.router = fleet.NewRouter(pool, "")
	fx.front = httptest.NewServer(fx.router.Handler())
	fx.url = fx.front.URL
	return fx, nil
}

// killReplica hard-kills replica i: established router connections die
// mid-flight and new dials are refused — the "SIGKILL one replica" regime
// of the CI fleet-smoke job, in-process.
func (fx *fleetFixture) killReplica(i int) {
	fx.replicas[i].CloseClientConnections()
	fx.replicas[i].Close()
	fx.servers[i].Close()
	fx.replicas[i] = nil
	fx.servers[i] = nil
}

func (fx *fleetFixture) close() {
	if fx.front != nil {
		fx.front.CloseClientConnections()
		fx.front.Close()
	}
	if fx.router != nil {
		fx.router.Close()
	}
	for i := range fx.replicas {
		if fx.replicas[i] != nil {
			fx.replicas[i].CloseClientConnections()
			fx.replicas[i].Close()
		}
		if fx.servers[i] != nil {
			fx.servers[i].Close()
		}
	}
}

func (r *Runner) runFleet(sc Scenario) (Result, error) {
	fx, err := newFleetFixture(sc.MCUs, sc.Replicas)
	if err != nil {
		return Result{}, err
	}
	defer fx.close()

	batch := sc.BatchSize
	if batch <= 0 {
		batch = 1
	}
	contentType := "application/json"
	encode := func(events [][]float64) ([]byte, error) {
		return json.Marshal(map[string]any{"events": events})
	}
	if sc.Wire == "binary" {
		contentType = wire.ContentType
		encode = func(events [][]float64) ([]byte, error) {
			return wire.AppendRequest(nil, events, false)
		}
	}
	const bodyPool = 64
	bodies := make([][]byte, bodyPool)
	for i := range bodies {
		events := make([][]float64, batch)
		for j := range events {
			events[j] = fx.events[(i*batch+j)%len(fx.events)]
		}
		raw, err := encode(events)
		if err != nil {
			return Result{}, fmt.Errorf("perf: encode request: %w", err)
		}
		bodies[i] = raw
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	// A kill-one scenario is a single measurement pass: the replica it kills
	// at the halfway mark cannot be resurrected for a second pass, and its
	// point is the error count (zero, via the retry path), not best-of-3
	// throughput.
	npasses := measurePasses
	if sc.KillOne {
		npasses = 1
	}
	var killOnce sync.Once
	passes := make([]Result, npasses)
	for pass := range passes {
		h := hist.New()
		var errs atomic.Uint64
		doRequest := func(i int) {
			if sc.KillOne && i == sc.Requests/2 {
				killOnce.Do(func() { fx.killReplica(0) })
			}
			t0 := time.Now()
			resp, err := client.Post(fx.url+"/v1/predict", contentType,
				bytes.NewReader(bodies[i%bodyPool]))
			if err == nil {
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			h.Record(time.Since(t0))
			if err != nil {
				errs.Add(1)
			}
		}

		probe := startProbe()
		start := time.Now()
		switch sc.Kind {
		case KindFleetClosed:
			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(sc.Concurrency)
			for w := 0; w < sc.Concurrency; w++ {
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(sc.Requests) {
							return
						}
						doRequest(int(i))
					}
				}()
			}
			wg.Wait()
		case KindFleetOpen:
			interval := sc.interval()
			sched := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < sc.Requests; i++ {
				if d := time.Until(sched.Add(time.Duration(i) * interval)); d > 0 {
					time.Sleep(d)
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					doRequest(i)
				}(i)
			}
			wg.Wait()
		}
		wall := time.Since(start)

		res := Result{
			Scenario:    sc.Name,
			Kind:        string(sc.Kind),
			Ops:         uint64(sc.Requests),
			Errors:      errs.Load(),
			WallSeconds: wall.Seconds(),
			Throughput:  float64(sc.Requests*batch) / wall.Seconds(),
		}
		res.AllocsPerOp, res.BytesPerOp = probe.perOp(res.Ops)
		fillLatency(&res, h)
		passes[pass] = res
	}
	res := bestOf(passes)
	if res.Errors > 0 {
		r.logf("%s: %d requests failed", sc.Name, res.Errors)
	}
	return res, nil
}
