package perf

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/obs"
	"streambrain/internal/perf/hist"
	"streambrain/internal/serve/wire"
	"streambrain/internal/stream"
	"streambrain/internal/tensor"
)

// Runner executes perf scenarios. The zero value is usable; set Logf to see
// per-scenario progress (cmd/streambrain-loadtest points it at stderr).
type Runner struct {
	Logf func(format string, args ...any)

	// WireOverride forces every serve scenario onto one predict codec
	// ("json" or "binary", the loadtest -wire flag); empty keeps each
	// scenario's declared Wire. Scenario names are unchanged, so an
	// overridden report is NOT baseline-comparable — it is for ad-hoc
	// protocol A/B runs, not re-baselining.
	WireOverride string
}

func (r *Runner) logf(format string, args ...any) {
	if r != nil && r.Logf != nil {
		r.Logf(format, args...)
	}
}

// RunSuite resolves a built-in suite by name and runs every scenario in
// declaration order, returning the stamped report.
func (r *Runner) RunSuite(name string) (Report, error) {
	scs, err := SuiteByName(name)
	if err != nil {
		return Report{}, err
	}
	rep := NewReport(name)
	for _, sc := range scs {
		res, err := r.RunScenario(sc)
		if err != nil {
			return rep, fmt.Errorf("perf: scenario %s: %w", sc.Name, err)
		}
		r.logf("%-24s %10.1f ops/s-equivalent  p99 %.3fms", res.Scenario, res.Throughput, res.P99Ms)
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// RunScenario validates and executes one scenario.
func (r *Runner) RunScenario(sc Scenario) (Result, error) {
	if r != nil && r.WireOverride != "" &&
		(sc.Kind == KindServeClosed || sc.Kind == KindServeOpen ||
			sc.Kind == KindFleetClosed || sc.Kind == KindFleetOpen) {
		sc.Wire = r.WireOverride
	}
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	r.logf("running %s (%s)...", sc.Name, sc.Kind)
	switch sc.Kind {
	case KindKernel:
		return r.runKernel(sc)
	case KindServeClosed, KindServeOpen:
		return r.runServe(sc)
	case KindStream:
		return r.runStream(sc)
	case KindAllreduce:
		return r.runAllreduce(sc)
	case KindTrainScale:
		return r.runTrainScale(sc)
	case KindFleetClosed, KindFleetOpen:
		return r.runFleet(sc)
	}
	return Result{}, fmt.Errorf("perf: unknown kind %q", sc.Kind)
}

// measurePasses is how many times the Runner repeats each scenario's
// measurement phase (setup and fixtures are reused across passes). The
// reported Result takes each metric's best pass — max throughput, min
// latency percentiles — the min-over-repetitions estimator that keeps
// one-off scheduler jitter out of committed baselines. Errors take the
// worst pass, so the reported error count stays comparable to Ops.
const measurePasses = 3

// bestOf folds per-pass results into the reported one.
func bestOf(passes []Result) Result {
	best := passes[0]
	for _, r := range passes[1:] {
		if r.Errors > best.Errors {
			best.Errors = r.Errors
		}
		if r.Throughput > best.Throughput {
			best.Throughput = r.Throughput
			best.WallSeconds = r.WallSeconds
		}
		best.P50Ms = math.Min(best.P50Ms, r.P50Ms)
		best.P95Ms = math.Min(best.P95Ms, r.P95Ms)
		best.P99Ms = math.Min(best.P99Ms, r.P99Ms)
		best.MaxMs = math.Min(best.MaxMs, r.MaxMs)
		best.AllocsPerOp = math.Min(best.AllocsPerOp, r.AllocsPerOp)
		best.BytesPerOp = math.Min(best.BytesPerOp, r.BytesPerOp)
	}
	return best
}

// memProbe snapshots the monotone heap counters so a run can report
// per-operation allocation deltas (the runtime.MemStats analogue of
// b.ReportAllocs, covering generator and measured path together).
type memProbe struct{ before runtime.MemStats }

func startProbe() *memProbe {
	p := &memProbe{}
	runtime.ReadMemStats(&p.before)
	return p
}

func (p *memProbe) perOp(ops uint64) (allocs, bytesPerOp float64) {
	var now runtime.MemStats
	runtime.ReadMemStats(&now)
	if ops == 0 {
		return 0, 0
	}
	return float64(now.Mallocs-p.before.Mallocs) / float64(ops),
		float64(now.TotalAlloc-p.before.TotalAlloc) / float64(ops)
}

// fillLatency converts histogram quantiles into the Result's millisecond
// fields.
func fillLatency(res *Result, h *hist.Histogram) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	res.P50Ms = ms(h.Quantile(0.50))
	res.P95Ms = ms(h.Quantile(0.95))
	res.P99Ms = ms(h.Quantile(0.99))
	res.MaxMs = ms(h.Max())
}

// ------------------------------------------------------------------ kernels

// traceGeometry is the fixed geometry of the "trace" kernel op — the Fig-3
// one-hot outer-product trace update at a mid-size unit count. Pinned so
// the scenario does identical work everywhere.
const (
	traceBatch  = 128
	traceGroups = 28
	traceWidth  = 10
	traceUnits  = 2000
)

// buildKernelOp materializes the scenario's inputs and returns the
// operation closure; setup cost stays outside the measured loop.
//
// An empty Precision keeps the legacy float64 behaviors (core-driven
// trainstep included) so pre-existing baseline scenarios measure exactly
// what they always measured. An explicit "f64"/"f32" runs the backend-level
// kernel sequence from buildKernelOpAt, giving the two precisions of a
// sweep pair identical work.
func buildKernelOp(sc Scenario) (func(), error) {
	switch sc.Precision {
	case "f32":
		be, err := backend.New32(sc.Backend, 0)
		if err != nil {
			return nil, err
		}
		return buildKernelOpAt[float32](sc, be)
	case "f64":
		be, err := backend.New(sc.Backend, 0)
		if err != nil {
			return nil, err
		}
		return buildKernelOpAt[float64](sc, be)
	}
	be, err := backend.New(sc.Backend, 0)
	if err != nil {
		return nil, err
	}
	switch sc.Op {
	case "gemm", "trace":
		return buildKernelOpAt[float64](sc, be)
	case "trainstep":
		ds := higgs.Generate(1600, 0.5, 1)
		enc := data.FitEncoder(ds, 10)
		encoded := enc.Transform(ds)
		p := fixtureParams(sc.MCUs)
		p.ReceptiveField = 0.30
		rng := rand.New(rand.NewSource(p.Seed))
		layer := core.NewHiddenLayer(be, encoded.Hypercolumns, encoded.UnitsPerHC, p, rng)
		layer.InitTracesFromData(encoded.Idx[:1024])
		batch := encoded.Idx[:128]
		return func() { layer.TrainBatch(batch) }, nil
	}
	return nil, fmt.Errorf("perf: unknown kernel op %q", sc.Op)
}

// trainstepGeometry pins the synthetic trainstep's input side to the Higgs
// encoding shape (28 features × 10 quantile bins, batch 128).
const (
	trainstepFi    = 28
	trainstepMi    = 10
	trainstepBatch = 128
)

// buildKernelOpAt builds the precision-parameterized kernel closures. The
// "trainstep" op is the full unsupervised BCPNN batch sequence expressed
// directly in backend kernels — forward pass, the three trace updates, and
// the parameter refresh — identical work at either element width, which is
// what makes the f32/f64 scenario pairs a controlled precision experiment.
func buildKernelOpAt[T tensor.Float](sc Scenario, be backend.Kernels[T]) (func(), error) {
	switch sc.Op {
	case "gemm":
		n := sc.Size
		rng := rand.New(rand.NewSource(1))
		a, b, dst := tensor.NewDense[T](n, n), tensor.NewDense[T](n, n), tensor.NewDense[T](n, n)
		for i := range a.Data {
			a.Data[i] = T(rng.Float64())
			b.Data[i] = T(rng.Float64())
		}
		return func() { be.MatMul(dst, a, b) }, nil
	case "trace":
		rng := rand.New(rand.NewSource(2))
		cij := tensor.NewDense[T](traceGroups*traceWidth, traceUnits)
		act := tensor.NewDense[T](traceBatch, traceUnits)
		for i := range act.Data {
			act.Data[i] = T(rng.Float64())
		}
		idx := make([][]int32, traceBatch)
		for s := range idx {
			for g := 0; g < traceGroups; g++ {
				idx[s] = append(idx[s], int32(g*traceWidth+rng.Intn(traceWidth)))
			}
		}
		return func() { be.OneHotOuterLerp(cij, idx, act, 0.01) }, nil
	case "trainstep":
		rng := rand.New(rand.NewSource(3))
		mcus := sc.MCUs
		if mcus <= 0 {
			mcus = 100
		}
		in, units := trainstepFi*trainstepMi, mcus
		w := tensor.NewDense[T](in, units)
		cij := tensor.NewDense[T](in, units)
		ci := make([]T, in)
		cj := make([]T, units)
		bias := make([]T, units)
		kbi := make([]T, units)
		meanAct := make([]T, units)
		for i := range ci {
			ci[i] = T(rng.Float64()*0.05 + 0.01)
		}
		for j := range cj {
			cj[j] = T(rng.Float64()*0.05 + 0.01)
			kbi[j] = 1
		}
		for i := range cij.Data {
			cij.Data[i] = T(rng.Float64()*0.01 + 1e-4)
		}
		idx := make([][]int32, trainstepBatch)
		for s := range idx {
			for f := 0; f < trainstepFi; f++ {
				idx[s] = append(idx[s], int32(f*trainstepMi+rng.Intn(trainstepMi)))
			}
		}
		act := tensor.NewDense[T](trainstepBatch, units)
		const t = 0.012
		// Structural-sparsity fixture (DESIGN.md §15): a receptive-field mask
		// silencing Sparsity of the input hypercolumns, the state the
		// prune/regrow schedule leaves behind. The dense twin still computes
		// every block against this mask (masked UpdateWeights re-zeroes the
		// silent panels, exactly what the dense training regime pays); the
		// sparse twin walks the compressed block index and skips them.
		mask, bi := trainstepMask(sc, rng, units)
		if st, ok := be.(backend.LayerStepper[T]); ok {
			// A whole-layer offload backend (DESIGN.md §14) runs the identical
			// update as one fused LayerStep; the fused/parallel throughput
			// ratio of a scenario pair is the measured fusion speedup
			// benchgate floors.
			geom := backend.LayerGeom{Fi: trainstepFi, Mi: trainstepMi, H: 1, M: units}
			hyper := backend.LayerHyper[T]{Taupdt: t, Temperature: 1, Eps: 1e-9, Kbi: kbi}
			if sc.Sparse {
				hyper.Blocks = bi
			}
			return func() {
				st.LayerStep(idx, act, ci, cj, cij, w, bias, mask, geom, hyper)
			}, nil
		}
		if sc.Sparse {
			return func() {
				// Block-sparse step: forward gather, joint-trace update and
				// weight re-derivation touch only active blocks — the
				// sequence HiddenLayer.trainBatchInto runs in sparse mode.
				be.OneHotMatMulSparse(act, idx, w, bi)
				be.AddBias(act, bias)
				be.SoftmaxGroups(act, 1, units, 1)
				be.OneHotMeanLerp(ci, idx, t)
				tensor.ColMeans(meanAct, act)
				be.Lerp(cj, meanAct, t)
				be.OneHotOuterLerpSparse(cij, idx, act, t, bi)
				be.UpdateWeightsSparse(w, ci, cj, cij, bi, 1e-9)
				be.UpdateBias(bias, kbi, cj, 1e-9)
			}, nil
		}
		return func() {
			// Forward: support, bias, per-HCU softmax (single hypercolumn).
			be.OneHotMatMul(act, idx, w)
			be.AddBias(act, bias)
			be.SoftmaxGroups(act, 1, units, 1)
			// Trace updates.
			be.OneHotMeanLerp(ci, idx, t)
			tensor.ColMeans(meanAct, act)
			be.Lerp(cj, meanAct, t)
			be.OneHotOuterLerp(cij, idx, act, t)
			// Parameter refresh. Unmasked when no sparsity fixture is
			// configured, keeping legacy baseline scenarios bit-identical.
			be.UpdateWeights(w, ci, cj, cij, mask, trainstepFi, trainstepMi, 1, units, 1e-9)
			be.UpdateBias(bias, kbi, cj, 1e-9)
		}, nil
	}
	return nil, fmt.Errorf("perf: unknown kernel op %q", sc.Op)
}

// trainstepMask builds the structural-sparsity fixture for a trainstep
// scenario: an Fi×1 receptive-field mask with K = round((1−Sparsity)·Fi)
// active input hypercolumns (never below 1) plus its compressed block index.
// The active set is drawn from the scenario's pinned RNG, whose consumption up
// to this point is identical for every trainstep scenario — so the dense and
// sparse twins of one sparsity level share the exact same mask, which is what
// makes their throughput ratio a controlled experiment. Legacy scenarios with
// no sparsity configured get (nil, nil) and keep their original behavior.
func trainstepMask(sc Scenario, rng *rand.Rand, units int) ([]bool, *tensor.BlockIndex) {
	if sc.Sparsity == 0 && !sc.Sparse {
		return nil, nil
	}
	k := int(math.Round((1 - sc.Sparsity) * trainstepFi))
	if k < 1 {
		k = 1
	}
	mask := make([]bool, trainstepFi)
	for _, f := range rng.Perm(trainstepFi)[:k] {
		mask[f] = true
	}
	return mask, tensor.NewBlockIndex(mask, trainstepFi, trainstepMi, 1, units)
}

func (r *Runner) runKernel(sc Scenario) (Result, error) {
	op, err := buildKernelOp(sc)
	if err != nil {
		return Result{}, err
	}
	op() // one untimed warmup call: page in buffers, spin up worker teams
	passes := make([]Result, measurePasses)
	for pass := range passes {
		h := hist.New()
		probe := startProbe()
		start := time.Now()
		for i := 0; i < sc.Iters; i++ {
			t0 := time.Now()
			op()
			h.Record(time.Since(t0))
		}
		wall := time.Since(start)
		res := Result{
			Scenario:    sc.Name,
			Kind:        string(sc.Kind),
			Ops:         uint64(sc.Iters),
			WallSeconds: wall.Seconds(),
			Throughput:  float64(sc.Iters) / wall.Seconds(),
		}
		res.AllocsPerOp, res.BytesPerOp = probe.perOp(res.Ops)
		fillLatency(&res, h)
		passes[pass] = res
	}
	return bestOf(passes), nil
}

// -------------------------------------------------------------- serve load

func (r *Runner) runServe(sc Scenario) (Result, error) {
	fx, err := newServeFixture(sc.MCUs)
	if err != nil {
		return Result{}, err
	}
	defer fx.close()

	batch := sc.BatchSize
	if batch <= 0 {
		batch = 1
	}
	// Pre-encode a rotating pool of request bodies so the generator's own
	// codec work stays off the latency path. Wire selects the predict
	// protocol: JSON bodies or binary frames on the same endpoint (the
	// server negotiates by Content-Type).
	contentType := "application/json"
	encode := func(events [][]float64) ([]byte, error) {
		return json.Marshal(map[string]any{"events": events})
	}
	if sc.Wire == "binary" {
		contentType = wire.ContentType
		encode = func(events [][]float64) ([]byte, error) {
			return wire.AppendRequest(nil, events, false)
		}
	}
	const bodyPool = 64
	bodies := make([][]byte, bodyPool)
	for i := range bodies {
		events := make([][]float64, batch)
		for j := range events {
			events[j] = fx.events[(i*batch+j)%len(fx.events)]
		}
		raw, err := encode(events)
		if err != nil {
			return Result{}, fmt.Errorf("perf: encode request: %w", err)
		}
		bodies[i] = raw
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	passes := make([]Result, measurePasses)
	for pass := range passes {
		h := hist.New()
		var errs atomic.Uint64
		doRequest := func(i int) {
			t0 := time.Now()
			resp, err := client.Post(fx.url+"/v1/predict", contentType,
				bytes.NewReader(bodies[i%bodyPool]))
			if err == nil {
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			h.Record(time.Since(t0))
			if err != nil {
				errs.Add(1)
			}
		}

		probe := startProbe()
		start := time.Now()
		switch sc.Kind {
		case KindServeClosed:
			// Closed loop: Concurrency workers, each with exactly one
			// request in flight — measures capacity at a fixed offered
			// concurrency.
			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(sc.Concurrency)
			for w := 0; w < sc.Concurrency; w++ {
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(sc.Requests) {
							return
						}
						doRequest(int(i))
					}
				}()
			}
			wg.Wait()
		case KindServeOpen:
			// Open loop: dispatch on an absolute schedule (not a Ticker,
			// which coalesces missed ticks and would silently throttle the
			// generator when it falls behind) whether or not earlier
			// requests finished, so saturation shows up as queueing in
			// p99 instead of a lowered offered rate.
			interval := sc.interval()
			sched := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < sc.Requests; i++ {
				if d := time.Until(sched.Add(time.Duration(i) * interval)); d > 0 {
					time.Sleep(d)
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					doRequest(i)
				}(i)
			}
			wg.Wait()
		}
		wall := time.Since(start)

		res := Result{
			Scenario:    sc.Name,
			Kind:        string(sc.Kind),
			Ops:         uint64(sc.Requests),
			Errors:      errs.Load(),
			WallSeconds: wall.Seconds(),
			// Headline rate is events/s: requests carry batch events each.
			Throughput: float64(sc.Requests*batch) / wall.Seconds(),
		}
		res.AllocsPerOp, res.BytesPerOp = probe.perOp(res.Ops)
		fillLatency(&res, h)
		passes[pass] = res
	}
	res := bestOf(passes)
	if err := scrapeServeMetrics(client, fx.url, &res); err != nil {
		// Telemetry is a bonus column, not the measurement — log and move on.
		r.logf("%s: /metrics scrape failed: %v", sc.Name, err)
	}
	if res.Errors > 0 {
		r.logf("%s: %d requests failed", sc.Name, res.Errors)
	}
	return res, nil
}

// scrapeServeMetrics fills the Result's Server* fields from the fixture
// server's own /metrics exposition: the batcher-observed average batch size,
// residual queue depth, and server-side queue-wait/forward p99s. These are
// lifetime-of-fixture numbers (all passes hit one server), which is exactly
// the regime bestOf summarizes.
func scrapeServeMetrics(client *http.Client, url string, res *Result) error {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	exp, err := obs.ParseText(resp.Body)
	if err != nil {
		return err
	}
	sum, okSum := exp.Value("streambrain_serve_batch_size_sum", nil)
	count, okCount := exp.Value("streambrain_serve_batch_size_count", nil)
	if okSum && okCount && count > 0 {
		res.ServerAvgBatch = sum / count
	}
	if depth, ok := exp.Value("streambrain_serve_queue_depth", nil); ok {
		res.ServerQueueDepth = depth
	}
	if q, ok := exp.HistQuantile("streambrain_serve_queue_wait_seconds", 0.99); ok {
		res.ServerQueueP99Ms = q * 1e3
	}
	if q, ok := exp.HistQuantile("streambrain_serve_forward_seconds", 0.99); ok {
		res.ServerForwardP99Ms = q * 1e3
	}
	return nil
}

// ------------------------------------------------------------ stream ingest

func (r *Runner) runStream(sc Scenario) (Result, error) {
	warmup := sc.Warmup
	if warmup <= 0 {
		warmup = 512
	}
	p := fixtureParams(sc.MCUs)
	pipe, err := stream.New(stream.Config{
		Backend:      "parallel",
		Params:       p,
		Warmup:       warmup,
		Window:       1024,
		PublishEvery: -1, // isolate the ingest path; publish cost is serve-side
	}, nil)
	if err != nil {
		return Result{}, err
	}
	ds := higgs.Generate(warmup+512, 0.5, 1)
	ch := make(chan stream.Event) // unbuffered: a send completes only when ingested
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background(), stream.ChanSource(ch)) }()
	// emit must select against done: if the pipeline exits early (e.g. a
	// refit error), nothing reads ch anymore and a bare send would hang
	// the load generator — and the CI job — forever.
	var runErr error
	emit := func(i int) bool {
		row := i % ds.Len()
		select {
		case ch <- stream.Event{Features: ds.X.Row(row), Label: ds.Y[row]}:
			return true
		case err := <-done:
			if err == nil {
				err = fmt.Errorf("stream pipeline exited before the source was closed")
			}
			runErr = err
			return false
		}
	}
	for i := 0; i <= warmup; i++ {
		// The final send of this loop is only consumed once bootstrap
		// training has finished, so everything after it is steady state.
		// Passes simply continue the stream: every pass measures the same
		// steady-state regime.
		if !emit(i) {
			return Result{}, runErr
		}
	}

	next := warmup + 1
	passes := make([]Result, measurePasses)
	for pass := range passes {
		h := hist.New()
		probe := startProbe()
		start := time.Now()
		for i := 0; i < sc.Events; i++ {
			t0 := time.Now()
			if !emit(next) {
				return Result{}, runErr
			}
			next++
			h.Record(time.Since(t0))
		}
		wall := time.Since(start)
		res := Result{
			Scenario:    sc.Name,
			Kind:        string(sc.Kind),
			Ops:         uint64(sc.Events),
			WallSeconds: wall.Seconds(),
			Throughput:  float64(sc.Events) / wall.Seconds(),
		}
		res.AllocsPerOp, res.BytesPerOp = probe.perOp(res.Ops)
		fillLatency(&res, h)
		passes[pass] = res
	}
	close(ch)
	if err := <-done; err != nil {
		return Result{}, err
	}
	return bestOf(passes), nil
}
