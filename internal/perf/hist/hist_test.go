package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the nearest-rank quantile over the raw samples — the
// ground truth the bucketed histogram approximates.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileKnownAnswer checks histogram percentiles against exact sorted
// quantiles on a log-uniform latency distribution spanning 1µs..1s — the
// range serve/stream latencies actually inhabit.
func TestQuantileKnownAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	samples := make([]int64, n)
	h := New()
	for i := range samples {
		// log-uniform in [1e3, 1e9) ns
		v := int64(math.Exp(rng.Float64()*math.Log(1e6)) * 1e3)
		samples[i] = v
		h.RecordValue(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	if h.Count() != n {
		t.Fatalf("Count() = %d, want %d", h.Count(), n)
	}
	if got, want := int64(h.Max()), samples[n-1]; got != want {
		t.Fatalf("Max() = %d, want exact max %d", got, want)
	}
	for _, q := range []float64{0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0} {
		got := float64(h.Quantile(q))
		want := float64(exactQuantile(samples, q))
		relErr := math.Abs(got-want) / want
		// Bucket midpoints bound quantization error at ~1.6%; allow 2%.
		if relErr > 0.02 {
			t.Errorf("Quantile(%v) = %v, exact %v, rel err %.3f", q, got, want, relErr)
		}
	}
}

// TestQuantileSmallCounts pins the degenerate cases: empty, one sample, and
// the exact small values bucket 0 stores losslessly.
func TestQuantileSmallCounts(t *testing.T) {
	var h Histogram // zero value must be usable
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.RecordValue(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := int64(h.Quantile(q)); got != 42 {
			t.Fatalf("Quantile(%v) = %d with one sample 42", q, got)
		}
	}
	// Values below subBucketCount are stored exactly.
	h2 := New()
	for v := int64(0); v < 64; v++ {
		h2.RecordValue(v)
	}
	if got := int64(h2.Quantile(0.5)); got != 31 {
		t.Fatalf("median of 0..63 = %d, want 31", got)
	}
	if h2.Mean() != time.Duration(63*64/2/64) {
		t.Fatalf("Mean() = %v", h2.Mean())
	}
}

// TestNegativeClamps ensures negative durations count as zero instead of
// corrupting an index.
func TestNegativeClamps(t *testing.T) {
	h := New()
	h.Record(-time.Second)
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Fatalf("negative record: count %d q1 %v", h.Count(), h.Quantile(1))
	}
}

// TestMerge verifies that merging two disjoint halves equals recording the
// whole stream into one histogram, quantile for quantile.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, all := New(), New(), New()
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1e8))
		all.RecordValue(v)
		if i%2 == 0 {
			a.RecordValue(v)
		} else {
			b.RecordValue(v)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if a.Max() != all.Max() {
		t.Fatalf("merged max %v, want %v", a.Max(), all.Max())
	}
	if a.Mean() != all.Mean() {
		t.Fatalf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if ga, gall := a.Quantile(q), all.Quantile(q); ga != gall {
			t.Fatalf("Quantile(%v): merged %v, direct %v", q, ga, gall)
		}
	}
	a.Merge(nil) // no-op, must not panic
}

// TestConcurrentRecord exercises the lock-free path under the race
// detector: total count must be exact regardless of interleaving.
func TestConcurrentRecord(t *testing.T) {
	h := New()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.RecordValue(int64(rng.Intn(1e7)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count() = %d, want %d", h.Count(), workers*per)
	}
	if h.Quantile(0.5) <= 0 {
		t.Fatalf("median %v after concurrent load", h.Quantile(0.5))
	}
}

// TestIndexRoundTrip checks that every representative value maps back to
// its own slot and that quantization error stays within the design bound.
func TestIndexRoundTrip(t *testing.T) {
	for i := 0; i < numCounters; i++ {
		v := valueAt(i)
		if got := index(v); got != i {
			t.Fatalf("index(valueAt(%d)) = %d", i, got)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100000; trial++ {
		v := int64(rng.Intn(1 << 46))
		rep := valueAt(index(v))
		relErr := math.Abs(float64(rep-v)) / math.Max(float64(v), 1)
		if relErr > 1.0/halfCount {
			t.Fatalf("value %d quantized to %d, rel err %.4f", v, rep, relErr)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RecordValue(int64(i%1e6) * 1000)
	}
}
