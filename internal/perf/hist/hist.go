// Package hist provides a fixed-footprint HDR-style latency histogram.
//
// The histogram buckets int64 nanosecond values logarithmically: bucket 0
// holds values 0..63 at 1ns resolution, and every higher bucket doubles the
// value range while keeping 32 linear sub-buckets, so the worst-case
// relative quantization error is bounded (~1.6% at bucket midpoints)
// across the whole range — the trade HdrHistogram makes, in miniature.
// Recording is a single atomic increment, so one histogram can absorb
// observations from many goroutines with no lock and no per-observation
// allocation; quantiles are computed on demand by walking the counters.
//
// Both sides of the perf story share this structure: internal/serve records
// request latencies into it for /stats (DESIGN.md §8), and internal/perf's
// load generator records per-operation latencies into it for BENCH_*.json.
// The zero value is ready to use.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits sets the linear resolution: bucket 0 covers
	// [0, 2^subBucketBits) exactly; higher buckets keep the top
	// subBucketBits-1 bits, i.e. 2^(subBucketBits-1) sub-buckets each.
	subBucketBits  = 6
	subBucketCount = 1 << subBucketBits // 64
	halfCount      = subBucketCount / 2 // 32 sub-buckets per scaled bucket

	// maxExp caps the scaled buckets: the top bucket ends at
	// subBucketCount << maxExp ns ≈ 19.5h. Larger values clamp into it —
	// far beyond any latency this repo measures.
	maxExp      = 40
	numCounters = subBucketCount + maxExp*halfCount
)

// Histogram is a lock-free log-bucketed latency histogram. The zero value
// is an empty, usable histogram.
type Histogram struct {
	counts [numCounters]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// New returns an empty histogram (equivalent to &Histogram{}).
func New() *Histogram { return &Histogram{} }

// index maps a non-negative value to its counter slot.
func index(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - subBucketBits // >= 1
	if exp > maxExp {
		return numCounters - 1
	}
	sub := int(v>>uint(exp)) - halfCount // in [0, halfCount)
	return subBucketCount + (exp-1)*halfCount + sub
}

// valueAt returns the representative (midpoint) value of a counter slot.
func valueAt(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	exp := uint((i-subBucketCount)/halfCount) + 1
	sub := int64((i - subBucketCount) % halfCount)
	lo := (int64(halfCount) + sub) << exp
	return lo + int64(1)<<(exp-1)
}

// Record adds one duration observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw nanosecond observation.
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[index(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded raw values (nanoseconds when the
// histogram records durations).
func (h *Histogram) Sum() int64 { return int64(h.sum.Load()) }

// CumulativeCounts returns, for each bound (ascending raw values), how many
// observations fell at or below it — the cumulative bucket counts a
// Prometheus histogram exposition is made of (internal/obs renders them as
// `_bucket{le=...}` samples). Observations are attributed by their bucket's
// representative value, so the answer carries the same ~1.6% quantization
// the quantiles do. The final cumulative total over all buckets is returned
// alongside so callers can emit a self-consistent +Inf bucket even while
// other goroutines record.
func (h *Histogram) CumulativeCounts(bounds []int64) (counts []uint64, total uint64) {
	counts = make([]uint64, len(bounds))
	var cum uint64
	bi := 0
	for i := 0; i < numCounters; i++ {
		v := valueAt(i)
		for bi < len(bounds) && bounds[bi] < v {
			counts[bi] = cum
			bi++
		}
		cum += h.counts[i].Load()
	}
	for ; bi < len(bounds); bi++ {
		counts[bi] = cum
	}
	return counts, cum
}

// Max returns the largest recorded observation (exact, not quantized).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-quantile (q in [0,1]) by nearest rank over the
// bucketed counts. The result is a bucket midpoint, never above the exact
// recorded maximum. Concurrent Record calls give an approximately
// consistent answer, which is what an operator polling /stats wants.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < numCounters; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := valueAt(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return time.Duration(v)
		}
	}
	return h.Max() // racing counters; fall back to the recorded max
}

// Merge folds o's observations into h. o is unchanged; neither histogram
// may be recorded into concurrently with the merge if an exact result is
// required.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := 0; i < numCounters; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		old := h.max.Load()
		if om <= old || h.max.CompareAndSwap(old, om) {
			return
		}
	}
}
