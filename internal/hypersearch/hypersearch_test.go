package hypersearch

import (
	"math"
	"testing"
)

// testSpace is a mixed-kind space whose optimum is known.
func testSpace() Space {
	return Space{
		{Name: "x", Kind: Float, Lo: -5, Hi: 5},
		{Name: "lr", Kind: LogFloat, Lo: 1e-4, Hi: 1},
		{Name: "n", Kind: Int, Lo: 1, Hi: 10},
		{Name: "c", Kind: Choice, Choices: []float64{0, 1, 2}},
	}
}

// sphereObjective peaks at x=2, lr=0.01, n=7, c=1 with value 0.
func sphereObjective(v []float64) float64 {
	dx := v[0] - 2
	dl := math.Log10(v[1]) - math.Log10(0.01)
	dn := v[2] - 7
	dc := v[3] - 1
	return -(dx*dx + dl*dl + 0.1*dn*dn + dc*dc)
}

func TestSpaceValidate(t *testing.T) {
	if err := testSpace().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Space{{Name: "b", Kind: LogFloat, Lo: 0, Hi: 1}}
	if bad.Validate() == nil {
		t.Fatal("log with Lo=0 accepted")
	}
	bad2 := Space{{Name: "b", Kind: Float, Lo: 2, Hi: 1}}
	if bad2.Validate() == nil {
		t.Fatal("Hi<Lo accepted")
	}
	bad3 := Space{{Name: "b", Kind: Choice}}
	if bad3.Validate() == nil {
		t.Fatal("empty choices accepted")
	}
}

func TestSampleInBounds(t *testing.T) {
	s := testSpace()
	r := NewRandomSearch(s, 1)
	for i := 0; i < 500; i++ {
		x := r.Ask()
		if x[0] < -5 || x[0] > 5 {
			t.Fatalf("float out of bounds: %v", x[0])
		}
		if x[1] < 1e-4 || x[1] > 1 {
			t.Fatalf("logfloat out of bounds: %v", x[1])
		}
		if x[2] != math.Trunc(x[2]) || x[2] < 1 || x[2] > 10 {
			t.Fatalf("int invalid: %v", x[2])
		}
		if x[3] != 0 && x[3] != 1 && x[3] != 2 {
			t.Fatalf("choice invalid: %v", x[3])
		}
	}
}

func TestLogFloatCoversDecades(t *testing.T) {
	// Log sampling must hit both the small and large decades; uniform
	// sampling of [1e-4, 1] would almost never produce values < 1e-3.
	s := Space{{Name: "lr", Kind: LogFloat, Lo: 1e-4, Hi: 1}}
	r := NewRandomSearch(s, 2)
	small := 0
	for i := 0; i < 1000; i++ {
		if r.Ask()[0] < 1e-3 {
			small++
		}
	}
	if small < 150 {
		t.Fatalf("only %d/1000 samples below 1e-3; not log-uniform", small)
	}
}

func TestClampSnapsChoices(t *testing.T) {
	s := testSpace()
	x := []float64{99, 5, 3.4, 1.4}
	s.Clamp(x)
	if x[0] != 5 || x[1] != 1 || x[2] != 3 || x[3] != 1 {
		t.Fatalf("clamp produced %v", x)
	}
}

func runOptimizer(t *testing.T, name string, opt Optimizer, budget int, wantAtLeast float64) {
	t.Helper()
	_, best := Run(opt, budget, sphereObjective)
	if best < wantAtLeast {
		t.Fatalf("%s: best %.3f after %d evals, want >= %.3f", name, best, budget, wantAtLeast)
	}
}

func TestRandomSearchConverges(t *testing.T) {
	runOptimizer(t, "random", NewRandomSearch(testSpace(), 3), 400, -1.0)
}

func TestOnePlusOneConverges(t *testing.T) {
	runOptimizer(t, "1+1", NewOnePlusOne(testSpace(), 4), 400, -0.3)
}

func TestDEConverges(t *testing.T) {
	runOptimizer(t, "de", NewDE(testSpace(), 12, 5), 600, -0.3)
}

func TestOnePlusOneBeatsRandomOnNarrowPeak(t *testing.T) {
	// A needle objective: random search rarely lands near it, while the ES
	// walks in once it touches the basin. Run several seeds and compare
	// average performance.
	needle := func(v []float64) float64 {
		d := (v[0] - 1.234) * (v[0] - 1.234)
		return -d
	}
	s := Space{{Name: "x", Kind: Float, Lo: -100, Hi: 100}}
	var esSum, rsSum float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		_, esBest := Run(NewOnePlusOne(s, seed), 200, needle)
		_, rsBest := Run(NewRandomSearch(s, seed), 200, needle)
		esSum += esBest
		rsSum += rsBest
	}
	if esSum/seeds <= rsSum/seeds {
		t.Fatalf("ES average %.4f not better than random %.4f", esSum/seeds, rsSum/seeds)
	}
}

func TestTellUpdatesBest(t *testing.T) {
	r := NewRandomSearch(testSpace(), 6)
	x1 := r.Ask()
	r.Tell(x1, 1)
	x2 := r.Ask()
	r.Tell(x2, 5)
	r.Tell(r.Ask(), 3)
	_, v := r.Best()
	if v != 5 {
		t.Fatalf("best = %v, want 5", v)
	}
}

func TestBestCopiesCandidate(t *testing.T) {
	r := NewRandomSearch(testSpace(), 7)
	x := r.Ask()
	r.Tell(x, 1)
	x[0] = 12345
	bx, _ := r.Best()
	if bx[0] == 12345 {
		t.Fatal("Best aliases the told slice")
	}
}

func TestDEBestEmpty(t *testing.T) {
	d := NewDE(testSpace(), 4, 8)
	if x, v := d.Best(); x != nil || !math.IsInf(v, -1) {
		t.Fatalf("empty Best = %v, %v", x, v)
	}
}

func TestOptimizersDeterministic(t *testing.T) {
	run := func() float64 {
		_, v := Run(NewOnePlusOne(testSpace(), 42), 100, sphereObjective)
		return v
	}
	if run() != run() {
		t.Fatal("same seed produced different outcomes")
	}
}
