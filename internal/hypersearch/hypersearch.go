// Package hypersearch provides black-box hyperparameter optimization with an
// ask/tell interface. It stands in for the Adaptive Experimentation Platform
// (Ax) + Nevergrad stack the paper uses (§IV) to navigate BCPNN's larger-
// than-backprop hyperparameter space: the same parameter-space/ask/tell
// workflow, with Nevergrad's workhorse (1+1) evolution strategy, plain
// random search, and differential evolution as engines.
package hypersearch

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind classifies a parameter's domain.
type Kind int

// Parameter kinds.
const (
	// Float is a uniform continuous parameter in [Lo, Hi].
	Float Kind = iota
	// LogFloat is a continuous parameter searched on a log scale.
	LogFloat
	// Int is an integer parameter in [Lo, Hi] (inclusive, rounded).
	Int
	// Choice is a categorical parameter over the Choices values.
	Choice
)

// Param declares one dimension of the search space.
type Param struct {
	Name    string
	Kind    Kind
	Lo, Hi  float64
	Choices []float64
}

// Space is an ordered set of parameters; candidate vectors align with it.
type Space []Param

// Validate reports the first malformed parameter.
func (s Space) Validate() error {
	for i, p := range s {
		switch p.Kind {
		case Float, Int:
			if p.Hi < p.Lo {
				return fmt.Errorf("hypersearch: param %d (%s): Hi < Lo", i, p.Name)
			}
		case LogFloat:
			if p.Lo <= 0 || p.Hi < p.Lo {
				return fmt.Errorf("hypersearch: param %d (%s): log bounds need 0 < Lo <= Hi", i, p.Name)
			}
		case Choice:
			if len(p.Choices) == 0 {
				return fmt.Errorf("hypersearch: param %d (%s): empty choices", i, p.Name)
			}
		}
	}
	return nil
}

// Sample draws a uniform random candidate.
func (s Space) Sample(rng *rand.Rand) []float64 {
	x := make([]float64, len(s))
	for i, p := range s {
		switch p.Kind {
		case Float:
			x[i] = p.Lo + rng.Float64()*(p.Hi-p.Lo)
		case LogFloat:
			x[i] = math.Exp(math.Log(p.Lo) + rng.Float64()*(math.Log(p.Hi)-math.Log(p.Lo)))
		case Int:
			x[i] = float64(int(p.Lo) + rng.Intn(int(p.Hi)-int(p.Lo)+1))
		case Choice:
			x[i] = p.Choices[rng.Intn(len(p.Choices))]
		}
	}
	return x
}

// Clamp projects a candidate back into the space, rounding discrete kinds.
func (s Space) Clamp(x []float64) {
	for i, p := range s {
		switch p.Kind {
		case Float, LogFloat:
			if x[i] < p.Lo {
				x[i] = p.Lo
			}
			if x[i] > p.Hi {
				x[i] = p.Hi
			}
		case Int:
			v := math.Round(x[i])
			if v < p.Lo {
				v = p.Lo
			}
			if v > p.Hi {
				v = p.Hi
			}
			x[i] = v
		case Choice:
			// Snap to the nearest declared choice.
			best, bd := p.Choices[0], math.Abs(x[i]-p.Choices[0])
			for _, c := range p.Choices[1:] {
				if d := math.Abs(x[i] - c); d < bd {
					best, bd = c, d
				}
			}
			x[i] = best
		}
	}
}

// Optimizer is the ask/tell loop contract. Objectives are maximized.
type Optimizer interface {
	// Ask proposes the next candidate to evaluate.
	Ask() []float64
	// Tell reports the objective achieved by a candidate from Ask.
	Tell(x []float64, objective float64)
	// Best returns the best candidate and objective seen so far.
	Best() ([]float64, float64)
}

// Run drives an optimizer for `budget` evaluations of eval and returns the
// best candidate found.
func Run(opt Optimizer, budget int, eval func([]float64) float64) ([]float64, float64) {
	for i := 0; i < budget; i++ {
		x := opt.Ask()
		opt.Tell(x, eval(x))
	}
	return opt.Best()
}

// ---------------------------------------------------------------- random

// RandomSearch evaluates independent uniform samples — the baseline every
// structured optimizer must beat.
type RandomSearch struct {
	space Space
	rng   *rand.Rand
	bestX []float64
	bestV float64
	seen  bool
}

// NewRandomSearch builds a random-search optimizer.
func NewRandomSearch(space Space, seed int64) *RandomSearch {
	mustValid(space)
	return &RandomSearch{space: space, rng: rand.New(rand.NewSource(seed))}
}

// Ask implements Optimizer.
func (r *RandomSearch) Ask() []float64 { return r.space.Sample(r.rng) }

// Tell implements Optimizer.
func (r *RandomSearch) Tell(x []float64, v float64) {
	if !r.seen || v > r.bestV {
		r.bestX = append([]float64(nil), x...)
		r.bestV = v
		r.seen = true
	}
}

// Best implements Optimizer.
func (r *RandomSearch) Best() ([]float64, float64) { return r.bestX, r.bestV }

// ---------------------------------------------------------------- (1+1)-ES

// OnePlusOne is the (1+1) evolution strategy with the 1/5th success rule:
// mutate the incumbent with per-dimension Gaussian steps, adopt on
// improvement, widen the step on success and narrow it on failure. This is
// Nevergrad's default single-worker optimizer.
type OnePlusOne struct {
	space Space
	rng   *rand.Rand
	sigma float64 // step size relative to each parameter's range
	bestX []float64
	bestV float64
	seen  bool
}

// NewOnePlusOne builds a (1+1)-ES starting from a uniform random incumbent.
func NewOnePlusOne(space Space, seed int64) *OnePlusOne {
	mustValid(space)
	return &OnePlusOne{space: space, rng: rand.New(rand.NewSource(seed)), sigma: 0.25}
}

// Ask implements Optimizer.
func (o *OnePlusOne) Ask() []float64 {
	if !o.seen {
		return o.space.Sample(o.rng)
	}
	x := append([]float64(nil), o.bestX...)
	for i, p := range o.space {
		switch p.Kind {
		case Float:
			x[i] += o.sigma * (p.Hi - p.Lo) * o.rng.NormFloat64()
		case LogFloat:
			span := math.Log(p.Hi) - math.Log(p.Lo)
			x[i] = math.Exp(math.Log(x[i]) + o.sigma*span*o.rng.NormFloat64())
		case Int:
			step := o.sigma * (p.Hi - p.Lo)
			if step < 1 {
				step = 1
			}
			x[i] += math.Round(step * o.rng.NormFloat64())
		case Choice:
			// Categorical mutation keeps a probability floor: sigma decay
			// must not freeze discrete dimensions out of the search.
			pm := o.sigma
			if pm < 0.15 {
				pm = 0.15
			}
			if o.rng.Float64() < pm {
				x[i] = p.Choices[o.rng.Intn(len(p.Choices))]
			}
		}
	}
	o.space.Clamp(x)
	return x
}

// Tell implements Optimizer: adopt improvements and adapt sigma by the
// 1/5th rule (×1.5 on success, ×0.87 ≈ 1.5^(−1/4) on failure).
func (o *OnePlusOne) Tell(x []float64, v float64) {
	if !o.seen {
		o.bestX = append([]float64(nil), x...)
		o.bestV = v
		o.seen = true
		return
	}
	if v > o.bestV {
		o.bestX = append([]float64(nil), x...)
		o.bestV = v
		o.sigma *= 1.5
		if o.sigma > 1 {
			o.sigma = 1
		}
	} else {
		o.sigma *= 0.87
		if o.sigma < 1e-3 {
			o.sigma = 1e-3
		}
	}
}

// Best implements Optimizer.
func (o *OnePlusOne) Best() ([]float64, float64) { return o.bestX, o.bestV }

// ---------------------------------------------------------------- DE

// DifferentialEvolution is DE/rand/1/bin with a ring-scheduled population:
// each Ask proposes a mutant for the next population slot, each Tell replaces
// the slot's incumbent when the mutant wins.
type DifferentialEvolution struct {
	space  Space
	rng    *rand.Rand
	f, cr  float64
	pop    [][]float64
	score  []float64
	filled int
	next   int
}

// NewDE builds a DE optimizer with the given population size (≥4).
func NewDE(space Space, popSize int, seed int64) *DifferentialEvolution {
	mustValid(space)
	if popSize < 4 {
		popSize = 4
	}
	return &DifferentialEvolution{
		space: space,
		rng:   rand.New(rand.NewSource(seed)),
		f:     0.8, cr: 0.9,
		pop:   make([][]float64, popSize),
		score: make([]float64, popSize),
	}
}

// Ask implements Optimizer.
func (d *DifferentialEvolution) Ask() []float64 {
	if d.filled < len(d.pop) {
		return d.space.Sample(d.rng)
	}
	t := d.next
	// Pick three distinct rows ≠ t.
	pick := func(exclude map[int]bool) int {
		for {
			i := d.rng.Intn(len(d.pop))
			if !exclude[i] {
				return i
			}
		}
	}
	ex := map[int]bool{t: true}
	a := pick(ex)
	ex[a] = true
	b := pick(ex)
	ex[b] = true
	c := pick(ex)
	x := append([]float64(nil), d.pop[t]...)
	forced := d.rng.Intn(len(d.space))
	for i := range d.space {
		if i == forced || d.rng.Float64() < d.cr {
			x[i] = d.pop[a][i] + d.f*(d.pop[b][i]-d.pop[c][i])
		}
	}
	d.space.Clamp(x)
	return x
}

// Tell implements Optimizer.
func (d *DifferentialEvolution) Tell(x []float64, v float64) {
	cp := append([]float64(nil), x...)
	if d.filled < len(d.pop) {
		d.pop[d.filled] = cp
		d.score[d.filled] = v
		d.filled++
		return
	}
	if v > d.score[d.next] {
		d.pop[d.next] = cp
		d.score[d.next] = v
	}
	d.next = (d.next + 1) % len(d.pop)
}

// Best implements Optimizer.
func (d *DifferentialEvolution) Best() ([]float64, float64) {
	if d.filled == 0 {
		return nil, math.Inf(-1)
	}
	bi := 0
	for i := 1; i < d.filled; i++ {
		if d.score[i] > d.score[bi] {
			bi = i
		}
	}
	return d.pop[bi], d.score[bi]
}

func mustValid(s Space) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}
