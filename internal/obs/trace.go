package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer samples request lifecycles: every sampleEvery-th call to Sample
// returns a live Trace, the rest return nil (and nil Traces swallow all span
// calls for free). Finished traces land in a fixed-capacity ring, newest
// evicting oldest, and can be exported as a chrome://tracing-loadable JSON
// array — one trace event per line, so the file is also greppable as JSONL.
type Tracer struct {
	sampleEvery uint64
	seq         atomic.Uint64 // sample admission counter
	epoch       time.Time     // zero point for exported timestamps

	mu   sync.Mutex
	ring []*Trace // finished traces, oldest first
	cap  int
}

// NewTracer returns a tracer keeping the last capacity finished traces and
// admitting one of every sampleEvery Sample calls (values < 1 mean
// sample-everything).
func NewTracer(sampleEvery, capacity int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{sampleEvery: uint64(sampleEvery), epoch: time.Now(), cap: capacity}
}

// Sample starts a new trace for one in sampleEvery calls; otherwise (and on
// a nil tracer) it returns nil, which every Trace/Span method tolerates.
func (t *Tracer) Sample(name string) *Trace {
	if t == nil {
		return nil
	}
	if (t.seq.Add(1)-1)%t.sampleEvery != 0 {
		return nil
	}
	return &Trace{tr: t, name: name, start: time.Now()}
}

// finish appends tr to the ring, evicting the oldest past capacity.
func (t *Tracer) finish(tr *Trace) {
	t.mu.Lock()
	t.ring = append(t.ring, tr)
	if len(t.ring) > t.cap {
		t.ring = t.ring[len(t.ring)-t.cap:]
	}
	t.mu.Unlock()
}

// Traces returns the finished traces currently in the ring, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.ring...)
}

// WriteChromeTrace writes the ring as a chrome://tracing / Perfetto JSON
// array of complete ("ph":"X") events, timestamps in microseconds since the
// tracer's epoch. Each trace renders on its own tid row: the root event is
// the whole request, the spans nest under it.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	for tid, tr := range t.Traces() {
		rows := tr.snapshot()
		emit := func(name string, start, end time.Time) {
			if !first {
				bw.WriteString(",\n")
			}
			first = false
			fmt.Fprintf(bw,
				`{"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d}`,
				name, t.us(start), float64(end.Sub(start))/1e3, tid+1)
		}
		emit(tr.name, tr.start, rows.end)
		for _, s := range rows.spans {
			emit(s.Name, s.Start, s.End)
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// us converts a timestamp to microseconds since the tracer epoch.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.epoch)) / 1e3
}

// Handler serves the ring as a chrome trace download — mount it at
// GET /debug/traces.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="streambrain-trace.json"`)
		t.WriteChromeTrace(w)
	})
}

// SpanRecord is one completed span inside a trace.
type SpanRecord struct {
	Name       string
	Start, End time.Time
}

// Trace is one sampled request lifecycle: a named root interval plus the
// spans recorded inside it. All methods are safe for concurrent use (spans
// may be added from the HTTP goroutine and a batcher worker at once) and
// no-ops on a nil receiver.
type Trace struct {
	tr    *Tracer
	name  string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
	end   time.Time
	done  bool
}

// Start opens a span; call End on the result to record it.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// Add records an already-measured interval as a span.
func (t *Trace) Add(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, SpanRecord{Name: name, Start: start, End: end})
	}
	t.mu.Unlock()
}

// AddDuration records a span of length d ending now — for stages whose
// boundaries were measured with a plain time.Since.
func (t *Trace) AddDuration(name string, d time.Duration) {
	if t == nil {
		return
	}
	now := time.Now()
	t.Add(name, now.Add(-d), now)
}

// Finish closes the trace and publishes it to the tracer's ring. Spans added
// after Finish are dropped. Finish is idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.end = time.Now()
	t.mu.Unlock()
	t.tr.finish(t)
}

type traceRows struct {
	spans []SpanRecord
	end   time.Time
}

func (t *Trace) snapshot() traceRows {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	return traceRows{spans: append([]SpanRecord(nil), t.spans...), end: end}
}

// Spans returns the spans recorded so far (test and /debug introspection).
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	return t.snapshot().spans
}

// Name returns the trace's root name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Span is one in-flight timed stage of a trace.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// End records the span into its trace. Safe on nil (unsampled requests).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.Add(s.name, s.start, time.Now())
}
