// Package obstest holds test helpers for the telemetry layer — chiefly the
// goroutine-leak assertion that serve and stream shutdown tests use to catch
// leaked batcher workers or trace exporters.
package obstest

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the helpers need.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckLeaks snapshots the current goroutines and returns a function to run
// at the end of the test (defer obstest.CheckLeaks(t)()). The returned check
// retries for a grace period — goroutines wind down asynchronously after
// Close — and fails the test with the offending stacks if new goroutines
// survive it.
func CheckLeaks(t TB) func() {
	before := goroutineStacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("obstest: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n"))
	}
}

// leakedSince returns stacks of goroutines alive now that were not running
// when before was captured and are not inherently uninteresting (runtime
// internals, the testing harness, lazily-closing HTTP machinery).
func leakedSince(before map[string]string) []string {
	var leaked []string
	for id, stack := range goroutineStacks() {
		if _, ok := before[id]; ok || ignorable(stack) {
			continue
		}
		leaked = append(leaked, stack)
	}
	sort.Strings(leaked)
	return leaked
}

// ignorable reports stacks that are never application leaks.
func ignorable(stack string) bool {
	for _, frag := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.tRunner",
		"runtime.goexit",
		"created by runtime",
		"runtime/pprof",
		"os/signal.signal_recv",
		"os/signal.loop",
		"net/http.(*Server).Serve", // the httptest server outlives subtests
		"net/http.(*persistConn)",  // idle keep-alive conns close lazily
		"net/http.(*Transport)",
		"internal/poll.runtime_pollWait",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}

// goroutineStacks returns the per-goroutine stacks keyed by goroutine id.
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	out := map[string]string{}
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if g == "" {
			continue
		}
		out[goroutineKey(g)] = g
	}
	return out
}

// goroutineKey identifies a goroutine by id (first line "goroutine N
// [state]:") so a state change doesn't make an old goroutine look new.
func goroutineKey(stack string) string {
	line, _, _ := strings.Cut(stack, "\n")
	fields := strings.Fields(line)
	if len(fields) >= 2 {
		return fields[1]
	}
	return line
}
