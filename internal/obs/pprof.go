package obs

import (
	"fmt"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// AttachPprof mounts the standard net/http/pprof handlers under
// /debug/pprof/ on mux — opt-in, so production servers only expose them when
// the operator asks (the -pprof flag on the binaries).
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", nhpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
}

// Profile is a whole-run pprof capture started at boot and written at
// shutdown (the -profile flag on streambrain-serve/-stream/-dist).
type Profile struct {
	kind string
	path string
	f    *os.File
}

// mutexProfileFraction samples 1/5 of mutex contention events — cheap
// enough to leave on for a whole run.
const mutexProfileFraction = 5

// StartProfile begins collecting the given profile kind ("cpu", "heap", or
// "mutex"), to be written to path by Stop. kind "" returns (nil, nil) and a
// nil *Profile's Stop is a no-op, so callers can wire the flag through
// unconditionally.
func StartProfile(kind, path string) (*Profile, error) {
	if kind == "" {
		return nil, nil
	}
	p := &Profile{kind: kind, path: path}
	switch kind {
	case "cpu":
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.f = f
	case "heap":
		// Collected at Stop; nothing to arm.
	case "mutex":
		runtime.SetMutexProfileFraction(mutexProfileFraction)
	default:
		return nil, fmt.Errorf("obs: unknown profile kind %q (want cpu, heap, or mutex)", kind)
	}
	return p, nil
}

// Stop finalizes the profile and writes it to the path given at start.
func (p *Profile) Stop() error {
	if p == nil {
		return nil
	}
	switch p.kind {
	case "cpu":
		pprof.StopCPUProfile()
		return p.f.Close()
	case "heap":
		f, err := os.Create(p.path)
		if err != nil {
			return err
		}
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	case "mutex":
		defer runtime.SetMutexProfileFraction(0)
		f, err := os.Create(p.path)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// Path returns the output path ("" on nil).
func (p *Profile) Path() string {
	if p == nil {
		return ""
	}
	return p.path
}

// ProfileKinds documents the values the -profile flag accepts.
const ProfileKinds = "cpu|heap|mutex"
