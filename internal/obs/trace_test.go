package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerSamplingAndRing(t *testing.T) {
	tr := NewTracer(3, 2)
	var live int
	for i := 0; i < 9; i++ {
		if tc := tr.Sample("req"); tc != nil {
			live++
			tc.Finish()
		}
	}
	if live != 3 {
		t.Fatalf("sampled %d of 9 with sampleEvery=3", live)
	}
	if got := len(tr.Traces()); got != 2 {
		t.Fatalf("ring holds %d traces, want capacity 2", got)
	}
}

func TestTraceSpansAndChromeExport(t *testing.T) {
	tr := NewTracer(1, 8)
	tc := tr.Sample("predict")
	for _, stage := range []string{"decode", "enqueue", "assemble", "encode", "forward"} {
		sp := tc.Start(stage)
		time.Sleep(200 * time.Microsecond)
		sp.End()
	}
	tc.AddDuration("respond", 150*time.Microsecond)
	tc.Finish()
	tc.Add("late", time.Now(), time.Now()) // after Finish: dropped
	if got := len(tc.Spans()); got != 6 {
		t.Fatalf("trace has %d spans, want 6", got)
	}

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The export must be strict JSON (chrome://tracing and jq both load it).
	var events []map[string]any
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, out)
	}
	if len(events) != 7 { // root + 6 spans
		t.Fatalf("exported %d events, want 7", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("event %v is not a complete event", ev)
		}
		if ev["dur"].(float64) < 0 || ev["ts"].(float64) < 0 {
			t.Fatalf("event %v has negative time", ev)
		}
	}
	// One event per line between the brackets (greppable JSONL property).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7+2 {
		t.Fatalf("export has %d lines, want 9 (brackets + 7 events)", len(lines))
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer(1, 4)
	tc := tr.Sample("req")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tc.AddDuration("worker", time.Microsecond)
		}
	}()
	for i := 0; i < 100; i++ {
		sp := tc.Start("http")
		sp.End()
	}
	<-done
	tc.Finish()
	if got := len(tc.Spans()); got != 200 {
		t.Fatalf("trace has %d spans, want 200", got)
	}
}
