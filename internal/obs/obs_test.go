package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sb_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("sb_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("sb_test_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var (
		r  *Registry
		tr *Tracer
	)
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(3)
	g := r.Gauge("x", "")
	g.Set(1)
	g.Add(1)
	h := r.LatencyHistogram("x_seconds", "")
	h.Observe(time.Millisecond)
	r.GaugeFunc("y", "", func() float64 { return 0 })
	r.Atomically(func() {})
	r.Snapshot(func() {})
	r.WriteText(&strings.Builder{})

	trace := tr.Sample("req")
	sp := trace.Start("stage")
	sp.End()
	trace.Add("x", time.Now(), time.Now())
	trace.AddDuration("y", time.Millisecond)
	trace.Finish()
	if trace.Spans() != nil || trace.Name() != "" {
		t.Fatal("nil trace should be empty")
	}

	var p *Profile
	if err := p.Stop(); err != nil {
		t.Fatalf("nil profile Stop: %v", err)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering sb_dual as gauge")
		}
	}()
	r.Gauge("sb_dual", "")
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_requests_total", "requests seen", L("code", "200")).Add(7)
	r.Counter("sb_requests_total", "requests seen", L("code", "500")).Add(1)
	r.Gauge("sb_queue_depth", "events waiting").Set(3)
	r.GaugeFunc("sb_generation", "bundle gen", func() float64 { return 42 })
	h := r.LatencyHistogram("sb_latency_seconds", "request latency")
	h.Observe(200 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(80 * time.Millisecond)
	vh := r.ValueHistogram("sb_batch_size", "batch sizes", []float64{1, 2, 4, 8})
	vh.ObserveValue(1)
	vh.ObserveValue(8)
	vh.ObserveValue(30)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	exp, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}

	if typ := exp.Types["sb_requests_total"]; typ != "counter" {
		t.Fatalf("sb_requests_total type = %q", typ)
	}
	if v, ok := exp.Value("sb_requests_total", map[string]string{"code": "200"}); !ok || v != 7 {
		t.Fatalf("sb_requests_total{code=200} = %v,%v", v, ok)
	}
	if v, ok := exp.Value("sb_generation", nil); !ok || v != 42 {
		t.Fatalf("sb_generation = %v,%v", v, ok)
	}
	if v, ok := exp.Value("sb_latency_seconds_count", nil); !ok || v != 3 {
		t.Fatalf("latency _count = %v,%v", v, ok)
	}
	// +Inf bucket must equal _count.
	if v, ok := exp.Value("sb_latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("latency +Inf bucket = %v,%v", v, ok)
	}
	// The 30-event batch lands only in +Inf.
	if v, ok := exp.Value("sb_batch_size_bucket", map[string]string{"le": "8"}); !ok || v != 2 {
		t.Fatalf("batch le=8 bucket = %v,%v", v, ok)
	}
	if v, ok := exp.Value("sb_batch_size_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("batch +Inf bucket = %v,%v", v, ok)
	}
	if v, ok := exp.Value("sb_batch_size_sum", nil); !ok || v != 39 {
		t.Fatalf("batch _sum = %v,%v", v, ok)
	}
	if q, ok := exp.HistQuantile("sb_latency_seconds", 0.5); !ok || q < 0.002 || q > 0.01 {
		t.Fatalf("latency p50 = %v,%v (want within (0.002,0.01])", q, ok)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("sb_cum_seconds", "")
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var sb strings.Builder
	r.WriteText(&sb)
	exp, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	prevLe := math.Inf(-1)
	n := 0
	for _, s := range exp.Samples {
		if s.Name != "sb_cum_seconds_bucket" {
			continue
		}
		le, _ := parseValue(s.Label("le"))
		if le <= prevLe {
			t.Fatalf("le bounds not ascending: %v after %v", le, prevLe)
		}
		if s.Value < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", s.Value, prev)
		}
		prev, prevLe = s.Value, le
		n++
	}
	if n != len(DefTimeBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d", n, len(DefTimeBuckets)+1)
	}
}

func TestSnapshotSeesAtomicGroupsWhole(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sb_group_a_total", "")
	b := r.Counter("sb_group_b_total", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Atomically(func() {
				a.Inc()
				b.Inc()
			})
		}
	}()
	for i := 0; i < 200; i++ {
		r.Snapshot(func() {
			if av, bv := a.Value(), b.Value(); av != bv {
				t.Errorf("torn snapshot: a=%d b=%d", av, bv)
			}
		})
	}
	close(stop)
	wg.Wait()
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_esc_total", "with \\ and \nnewline", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	r.WriteText(&sb)
	exp, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v\n%s", err, sb.String())
	}
	v, ok := exp.Value("sb_esc_total", map[string]string{"path": `a"b\c` + "\n"})
	if !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v,%v", v, ok)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"sb_x{le=\"1\" 3",                          // unterminated label set
		"sb_x notanumber",                          // bad value
		"# TYPE sb_x nonsense",                     // invalid type
		"sb_x{9bad=\"v\"} 1",                       // invalid label name
		"0bad_name 1",                              // invalid metric name
		"sb_x{le=\"1\"\\} 1",                       // dangling escape outside quotes
		"# TYPE sb_x counter\n# TYPE sb_x gauge\n", // conflicting types
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", bad)
		}
	}
}
