package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in Prometheus text exposition format 0.0.4:
// families in name order, each with # HELP and # TYPE lines, series in
// registration order, histograms as cumulative _bucket{le=...}/_sum/_count
// triples. The whole pass runs under the Snapshot lock, so the output is one
// consistent cut across every metric — including grouped updates made via
// Atomically.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	bw := bufio.NewWriter(w)
	r.Snapshot(func() {
		for _, name := range r.names() {
			r.mu.Lock()
			fam := r.families[name]
			r.mu.Unlock()
			writeFamily(bw, fam)
		}
	})
	bw.Flush()
}

func writeFamily(w *bufio.Writer, fam *family) {
	if fam.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ)
	for _, key := range fam.order {
		s := fam.series[key]
		switch {
		case s.counter != nil:
			fmt.Fprintf(w, "%s%s %d\n", fam.name, labelString(s.labels, "", 0), s.counter.Value())
		case s.gauge != nil:
			fmt.Fprintf(w, "%s%s %s\n", fam.name, labelString(s.labels, "", 0), formatFloat(s.gauge.Value()))
		case s.gaugeFn != nil:
			fmt.Fprintf(w, "%s%s %s\n", fam.name, labelString(s.labels, "", 0), formatFloat(s.gaugeFn()))
		case s.hist != nil:
			writeHist(w, fam.name, s)
		}
	}
}

func writeHist(w *bufio.Writer, name string, s *series) {
	h := s.hist
	counts, total := h.cumulative()
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.labels, "le", bound), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(s.labels, "le", math.Inf(1)), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.labels, "", 0), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.labels, "", 0), total)
}

// labelString renders {k="v",...}; leKey != "" appends an le label with the
// given bound. Returns "" for an empty label set.
func labelString(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelKey builds the map key identifying a series within its family.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	return labelString(labels, "", 0)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Sample is one parsed exposition line: a metric name (already including any
// _bucket/_sum/_count suffix), its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label's value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// Exposition is a parsed /metrics payload — the read side of WriteText,
// shared by tools/metricscheck (format validation, counter monotonicity) and
// internal/perf (folding server-reported queue/stage metrics into Result).
type Exposition struct {
	Types   map[string]string // family name -> counter|gauge|histogram|...
	Help    map[string]string
	Samples []Sample
}

// ParseText parses Prometheus text exposition, returning an error (with a
// line number) on any malformed line. Unknown families without a # TYPE are
// allowed, matching Prometheus' untyped convention.
func ParseText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !nameRE.MatchString(name) {
			return fmt.Errorf("TYPE line has invalid metric name %q", name)
		}
		switch typ {
		case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("TYPE line has invalid type %q", typ)
		}
		if prev, ok := e.Types[name]; ok && prev != typ {
			return fmt.Errorf("metric %s declared as both %s and %s", name, prev, typ)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		e.Help[fields[2]] = help
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		s.Name, rest = fields[0], " "+fields[1]
	}
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	valStr := strings.TrimSpace(rest)
	// A trailing timestamp is legal; the value is the first field.
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		if !labelRE.MatchString(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s value is not quoted", key)
		}
		val, n, err := unquoteLabel(rest)
		if err != nil {
			return err
		}
		into[key] = val
		body = rest[n:]
		body = strings.TrimPrefix(body, ",")
	}
	return nil
}

// unquoteLabel consumes a quoted, possibly escaped label value, returning
// the value and how many input bytes it spanned.
func unquoteLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// Value returns the value of the first sample matching name and every given
// label (extra labels on the sample are ignored).
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// HistQuantile estimates the q-quantile of an exposed histogram family by
// nearest-rank interpolation over its cumulative buckets, in exposed units.
// It aggregates every series of the family (summing buckets across label
// sets), which is what a scraper wants for "the server-side p99".
func (e *Exposition) HistQuantile(name string, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	perLe := map[float64]float64{}
	for _, s := range e.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		perLe[le] += s.Value
	}
	if len(perLe) == 0 {
		return 0, false
	}
	buckets := make([]bucket, 0, len(perLe))
	for le, c := range perLe {
		buckets = append(buckets, bucket{le, c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				// Value beyond the last finite bound; report that bound.
				for i := len(buckets) - 1; i >= 0; i-- {
					if !math.IsInf(buckets[i].le, 1) {
						return buckets[i].le, true
					}
				}
				return 0, false
			}
			return b.le, true
		}
	}
	return buckets[len(buckets)-1].le, true
}
