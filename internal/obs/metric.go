package obs

import (
	"math"
	"sync/atomic"
	"time"

	"streambrain/internal/perf/hist"
)

// DefTimeBuckets are the default latency bucket upper bounds in seconds,
// spanning 100µs..10s — wide enough for a kernel forward pass and a
// cold-start batch alike.
var DefTimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (which must be non-negative — counters only go up).
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. All methods are safe for concurrent use and
// no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a Prometheus-style cumulative histogram backed by the
// lock-free hist.Histogram. Raw observations are int64 ticks; scale is the
// number of ticks per exposed unit (1e9 for a seconds histogram recording
// nanoseconds, 1 for plain value histograms). All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Histogram struct {
	h      hist.Histogram
	bounds []float64 // exposed-unit upper bounds, ascending
	raw    []int64   // same bounds in raw ticks
	scale  float64
}

func newHistogram(bounds []float64, scale float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), scale: scale}
	h.raw = make([]int64, len(bounds))
	for i, b := range bounds {
		h.raw[i] = int64(b * scale)
	}
	return h
}

// Observe records one duration (for histograms registered with
// LatencyHistogram; raw ticks are nanoseconds).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.h.Record(d)
}

// ObserveValue records one raw observation in ticks (for ValueHistogram
// instruments, ticks are the value itself).
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	h.h.RecordValue(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.h.Count()
}

// Sum returns the sum of observations in exposed units.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.h.Sum()) / h.scale
}

// Max returns the largest raw observation in ticks.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return int64(h.h.Max())
}

// Quantile returns the q-quantile in raw ticks (nanoseconds for latency
// histograms), quantized by the underlying buckets.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return int64(h.h.Quantile(q))
}

// cumulative returns the per-bound cumulative counts plus the walked total
// (the +Inf bucket), delegating to hist.CumulativeCounts.
func (h *Histogram) cumulative() (counts []uint64, total uint64) {
	return h.h.CumulativeCounts(h.raw)
}
