// Package obs is the unified telemetry subsystem (DESIGN.md §11): a
// dependency-free concurrent metrics registry with hand-rolled Prometheus
// text exposition, lightweight request tracing with a sampled ring exporter
// (chrome://tracing-loadable), and runtime profiling hooks (net/http/pprof
// wiring plus shutdown-written pprof files).
//
// One Registry is shared by everything a process runs — the serve batcher,
// the stream pipeline, the mpi fabric — so GET /metrics and GET /stats are
// two views over the same counters and can never disagree. Metric updates
// are atomic and lock-free on the hot path; a writer that must publish
// several related values as one consistent unit wraps them in
// Registry.Atomically, and readers that need a torn-free cross-metric view
// wrap their loads in Registry.Snapshot (the exposition writer does this
// internally). That pairing is what fixes the classic snapshot-assembled-
// from-independent-atomics bug: a reader can no longer observe "batches
// incremented but batched events not yet".
//
// Every instrument method is nil-receiver-safe, so uninstrumented code paths
// (a Batcher built without a registry, a Pipeline without a tracer) carry no
// branches at call sites and no overhead beyond a nil check.
package obs

import (
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"sync"
)

// Label is one constant key/value pair attached to a metric series at
// registration time (e.g. rank="3" on the mpi byte counters).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Metric type names as they appear on # TYPE exposition lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one metric name: its metadata plus every labeled series
// registered under it.
type family struct {
	name, help, typ string
	order           []string // series keys in registration order
	series          map[string]*series
}

// series is one (name, labelset) instrument. Exactly one of the value
// fields is set, matching the family type.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry is a concurrent metric registry. The zero value is not usable;
// build one with NewRegistry. Registration is idempotent: asking twice for
// the same (name, labels) returns the same instrument, so subsystems can be
// constructed independently against a shared registry. Registering a name
// under two different metric types panics — that is a programming error the
// first test run catches.
type Registry struct {
	// snap is the consistency lock: grouped updates hold it shared
	// (Atomically), consistent readers hold it exclusively (Snapshot,
	// WriteText). Plain instrument ops skip it entirely and stay atomic.
	snap sync.RWMutex

	mu       sync.Mutex // guards the family table during registration
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Atomically runs f (a group of related instrument updates) so that no
// Snapshot or exposition pass can observe the group half-applied. Do not
// nest Atomically or call Snapshot from inside f.
func (r *Registry) Atomically(f func()) {
	if r == nil {
		f()
		return
	}
	r.snap.RLock()
	f()
	r.snap.RUnlock()
}

// Snapshot runs f while all Atomically groups are excluded, so the values f
// loads form one consistent cross-metric snapshot.
func (r *Registry) Snapshot(f func()) {
	if r == nil {
		f()
		return
	}
	r.snap.Lock()
	f()
	r.snap.Unlock()
}

// lookup get-or-creates a family and series; newFn builds the instrument on
// first registration.
func (r *Registry) lookup(name, help, typ string, labels []Label, newFn func() *series) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, fam.typ, typ))
	}
	key := labelKey(labels)
	s, ok := fam.series[key]
	if !ok {
		s = newFn()
		s.labels = append([]Label(nil), labels...)
		fam.series[key] = s
		fam.order = append(fam.order, key)
	}
	return s
}

// Counter registers (or returns the existing) monotone counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	}).counter
}

// Gauge registers (or returns the existing) settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed at exposition time —
// the natural shape for derived values like queue depth or a registry
// generation. fn must be safe to call from any goroutine. Re-registering
// the same (name, labels) keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.lookup(name, help, typeGauge, labels, func() *series {
		return &series{gaugeFn: fn}
	})
}

// LatencyHistogram registers a histogram of durations exposed in seconds
// with the default latency bucket bounds.
func (r *Registry) LatencyHistogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeHistogram, labels, func() *series {
		return &series{hist: newHistogram(DefTimeBuckets, 1e9)}
	}).hist
}

// ValueHistogram registers a histogram of plain non-negative integer values
// (batch sizes, payload lengths) with explicit ascending bucket bounds.
func (r *Registry) ValueHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeHistogram, labels, func() *series {
		return &series{hist: newHistogram(bounds, 1)}
	}).hist
}

// names returns the sorted family names (exposition order).
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for n := range r.families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler serves the registry as Prometheus text exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
