// Package fleet is the horizontal serving tier (DESIGN.md §13): a Pool of
// streambrain-serve replica processes behind one Router front door. The
// router accepts /v1/predict in both codecs, speaks only the length-prefixed
// binary protocol (DESIGN.md §12) on the router↔replica hop over persistent
// connections, health-checks replicas with ejection and re-admission,
// retries idempotent predicts once on a dead replica, sheds load with 429
// before queues grow unbounded, and distributes bundle reloads to every
// member. Membership is either static (-replica flags) or dynamic: replicas
// announce themselves over the same hello/address-table bootstrap framing
// the mpi TCP fabric uses for rank rendezvous (DESIGN.md §10).
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"streambrain/internal/obs"
)

// Pick policy names accepted by Config.Pick and the -pick flag.
const (
	// PickLeastLoaded routes each request to the healthy replica with the
	// fewest router-side requests in flight — the right default for
	// homogeneous replicas.
	PickLeastLoaded = "least-loaded"
	// PickHash routes by rendezvous (highest-random-weight) hash of the
	// request payload: the same event batch lands on the same replica while
	// membership is stable, and only 1/N of keys move when it changes.
	PickHash = "hash"
)

// Config tunes the fleet pool and router.
type Config struct {
	// Pick selects the replica pick policy (default PickLeastLoaded).
	Pick string
	// MaxInflight bounds router-wide admitted predicts; requests beyond it
	// are shed with 429 (default 256).
	MaxInflight int
	// ConnsPerReplica caps the persistent connections (and so the in-flight
	// requests) per replica on the binary hop (default 32).
	ConnsPerReplica int
	// HealthEvery is the active /healthz probe interval (default 500ms;
	// negative disables active probing — ejection then relies on forward
	// failures and nothing re-admits, so only tests want that).
	HealthEvery time.Duration
	// FailAfter ejects a replica after this many consecutive failures
	// (probe or forward; default 2).
	FailAfter int
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// Obs is the shared metrics registry (nil gets a private one).
	Obs *obs.Registry
	// Tracer samples request lifecycles into /debug/traces. Nil builds one
	// sampling every TraceEvery-th request (TraceEvery < 0 disables, 0
	// keeps the serve default of 64).
	Tracer     *obs.Tracer
	TraceEvery int
}

func (c Config) withDefaults() Config {
	if c.Pick == "" {
		c.Pick = PickLeastLoaded
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.ConnsPerReplica <= 0 {
		c.ConnsPerReplica = 32
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	return c
}

// replica is one streambrain-serve member: its address, its persistent
// connection pool, and its health state.
type replica struct {
	addr string // host:port
	url  string // http://host:port

	client   *http.Client
	inflight atomic.Int64
	fails    atomic.Int64 // consecutive failures (probe or forward)
	healthy  atomic.Bool
	// generation is the bundle generation the replica last reported — the
	// fleet's mid-rollout skew signal.
	generation atomic.Uint64

	requests *obs.Counter
	forward  *obs.Histogram
}

// Pool is the fleet membership set: replicas, their health, and the active
// prober. Safe for concurrent use.
type Pool struct {
	cfg Config
	m   *Metrics

	mu       sync.RWMutex
	replicas []*replica
	byAddr   map[string]*replica
	joinLns  []net.Listener

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewPool builds an empty pool and starts its health prober.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	m := NewMetrics(cfg.Obs)
	p := &Pool{
		cfg:    cfg,
		m:      m,
		byAddr: make(map[string]*replica),
		stop:   make(chan struct{}),
	}
	m.reg.GaugeFunc(metricReplicas, "Replicas in the fleet membership table.",
		func() float64 { return float64(len(p.snapshot())) })
	m.reg.GaugeFunc(metricHealthy, "Replicas currently in rotation.",
		func() float64 { return float64(len(p.healthySnapshot(nil))) })
	m.reg.GaugeFunc(metricInflight, "Predicts in flight across all replicas.",
		func() float64 {
			var n int64
			for _, rep := range p.snapshot() {
				n += rep.inflight.Load()
			}
			return float64(n)
		})
	if cfg.HealthEvery > 0 {
		p.wg.Add(1)
		go p.probeLoop()
	}
	return p
}

// Metrics returns the pool's instrument set (the router shares it).
func (p *Pool) Metrics() *Metrics { return p.m }

// Add registers a replica by host:port address. Adding an existing address
// is a no-op (a re-announcing replica after a restart keeps its slot and its
// metric series); new members start healthy and the prober corrects that
// within one interval if they are not.
func (p *Pool) Add(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byAddr[addr]; ok {
		return
	}
	rep := &replica{
		addr: addr,
		url:  "http://" + addr,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        p.cfg.ConnsPerReplica,
				MaxIdleConnsPerHost: p.cfg.ConnsPerReplica,
				MaxConnsPerHost:     p.cfg.ConnsPerReplica,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	rep.healthy.Store(true)
	p.m.registerReplica(rep)
	p.byAddr[addr] = rep
	p.replicas = append(p.replicas, rep)
}

// Addrs returns the member addresses in join order.
func (p *Pool) Addrs() []string {
	reps := p.snapshot()
	addrs := make([]string, len(reps))
	for i, rep := range reps {
		addrs[i] = rep.addr
	}
	return addrs
}

// snapshot returns the current member slice (shared, read-only).
func (p *Pool) snapshot() []*replica {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.replicas
}

// healthySnapshot returns the replicas in rotation, excluding one (the
// retry path excludes the replica that just failed).
func (p *Pool) healthySnapshot(exclude *replica) []*replica {
	var out []*replica
	for _, rep := range p.snapshot() {
		if rep != exclude && rep.healthy.Load() {
			out = append(out, rep)
		}
	}
	return out
}

// pick selects a replica for one request under the configured policy, or
// nil when nothing is in rotation. key is the request-payload hash (only
// the hash policy reads it).
func (p *Pool) pick(key uint64, exclude *replica) *replica {
	healthy := p.healthySnapshot(exclude)
	if len(healthy) == 0 {
		return nil
	}
	if p.cfg.Pick == PickHash {
		// Rendezvous hashing: score every member against the key, take the
		// highest. Stable under membership churn without a ring structure.
		var best *replica
		var bestScore uint64
		for _, rep := range healthy {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s/%d", rep.addr, key)
			if s := h.Sum64(); best == nil || s > bestScore {
				best, bestScore = rep, s
			}
		}
		return best
	}
	best := healthy[0]
	for _, rep := range healthy[1:] {
		if rep.inflight.Load() < best.inflight.Load() {
			best = rep
		}
	}
	return best
}

// noteFailure records one failed probe or forward and ejects the replica
// once the consecutive-failure threshold is reached.
func (p *Pool) noteFailure(rep *replica) {
	if rep.fails.Add(1) >= int64(p.cfg.FailAfter) && rep.healthy.CompareAndSwap(true, false) {
		p.m.ejections.Inc()
	}
}

// noteSuccess clears the failure streak and re-admits an ejected replica.
func (p *Pool) noteSuccess(rep *replica) {
	rep.fails.Store(0)
	if rep.healthy.CompareAndSwap(false, true) {
		p.m.readmissions.Inc()
	}
}

// probeLoop actively health-checks every member. A replica that fails
// FailAfter consecutive checks (probe or forward) leaves rotation; one
// successful probe re-admits it. Probes run for ejected members too — that
// is the re-admission path.
func (p *Pool) probeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		for _, rep := range p.snapshot() {
			p.probe(rep)
		}
	}
}

// probe runs one /healthz check and updates the replica's health state and
// last-seen bundle generation.
func (p *Pool) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		p.noteFailure(rep)
		return
	}
	resp, err := rep.client.Do(req)
	if err != nil {
		p.noteFailure(rep)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.noteFailure(rep)
		return
	}
	var body struct {
		Bundle *struct {
			Generation uint64 `json:"generation"`
		} `json:"bundle"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Bundle != nil {
		rep.generation.Store(body.Bundle.Generation)
	}
	p.noteSuccess(rep)
}

// Close stops the prober, the membership listeners, and the replicas' idle
// connections. Pending forwards on live connections finish; the pool must
// not be picked from afterwards.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	lns := p.joinLns
	p.joinLns = nil
	p.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	p.wg.Wait()
	for _, rep := range p.snapshot() {
		rep.client.CloseIdleConnections()
	}
}
