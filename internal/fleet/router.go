package fleet

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"streambrain/internal/obs"
	"streambrain/internal/serve"
	"streambrain/internal/serve/wire"
)

// Router frame-size facts, restated from the wire package (DESIGN.md §12):
// the request length prefix is 4 bytes, the request header 6, and nothing
// legitimate exceeds header + MaxRows·MaxCols float64s. The router checks
// only these outer bounds on the binary pass-through path; payload geometry
// is the replica decoder's job and its typed 400s pass back unchanged.
const (
	prefixLen       = 4
	reqHeaderLen    = 6
	maxReqFrame     = prefixLen + reqHeaderLen + wire.MaxRows*wire.MaxCols*8
	maxBundleUpload = 256 << 20 // one pushed bundle, amply above any real model
)

// routerBuf is one request's working set: the buffered request frame and
// the buffered replica response, pooled so the steady-state pass-through
// path allocates nothing per request. Both directions are fully buffered on
// purpose — a replica dying mid-response must be retryable, which means the
// original request bytes have to outlive the first forward attempt.
type routerBuf struct {
	in  []byte
	out []byte
}

var routerBufPool = sync.Pool{New: func() any { return new(routerBuf) }}

// errAllAttemptsFailed marks a forward that failed at the transport on the
// retry attempt too (or had no second replica to retry on).
var errAllAttemptsFailed = errors.New("fleet: all forward attempts failed")

// errNoReplicas marks a pick against an empty rotation.
var errNoReplicas = errors.New("fleet: no healthy replicas")

// Router is the fleet front door (DESIGN.md §13): /v1/predict in JSON or
// binary at the edge, the binary protocol on every replica hop.
type Router struct {
	pool   *Pool
	m      *Metrics
	tracer *obs.Tracer
	sem    chan struct{}
	mux    *http.ServeMux
	start  time.Time

	mu         sync.Mutex // serializes /v1/reload fan-outs
	reloadPath string
}

// NewRouter builds the front door over a pool. reloadPath, when non-empty,
// is the default bundle path for POST /v1/reload.
func NewRouter(pool *Pool, reloadPath string) *Router {
	cfg := pool.cfg
	tracer := cfg.Tracer
	if tracer == nil && cfg.TraceEvery >= 0 {
		every := cfg.TraceEvery
		if every == 0 {
			every = 64
		}
		tracer = obs.NewTracer(every, 64)
	}
	rt := &Router{
		pool:       pool,
		m:          pool.m,
		tracer:     tracer,
		sem:        make(chan struct{}, cfg.MaxInflight),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reloadPath: reloadPath,
	}
	rt.mux.HandleFunc("POST /v1/predict", rt.handlePredict)
	rt.mux.HandleFunc("POST /v1/reload", rt.handleReload)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /stats", rt.handleStats)
	rt.mux.Handle("GET /metrics", rt.m.reg.Handler())
	if tracer != nil {
		rt.mux.Handle("GET /debug/traces", tracer.Handler())
	}
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Pool returns the membership pool behind the router.
func (rt *Router) Pool() *Pool { return rt.pool }

// Close stops the pool (prober, membership listeners, idle connections).
func (rt *Router) Close() { rt.pool.Close() }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handlePredict is the fan-out hot path: admit (or shed), buffer, pick,
// forward with one retry, respond.
func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Admission control: beyond MaxInflight concurrently admitted predicts
	// the router sheds immediately with 429 — a bounded queue would only
	// trade the 429 for a p99 explosion (DESIGN.md §13).
	select {
	case rt.sem <- struct{}{}:
		defer func() { <-rt.sem }()
	default:
		rt.m.shed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "router at capacity (%d in flight)", cap(rt.sem))
		return
	}

	started := time.Now()
	tr := rt.tracer.Sample("predict")
	ok := false
	defer func() {
		rt.m.requests.Inc()
		if !ok {
			rt.m.errors.Inc()
		}
		rt.m.latency.Observe(time.Since(started))
		tr.Finish()
	}()

	if strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType) {
		ok = rt.predictWire(w, r, tr)
		return
	}
	ok = rt.predictJSON(w, r, tr)
}

// predictWire is the binary pass-through arm: the frame bytes cross the
// router untouched in both directions. Only the outer bounds are checked
// here; a frame with bad geometry costs one replica round trip and comes
// back as the replica decoder's typed 400.
func (rt *Router) predictWire(w http.ResponseWriter, r *http.Request, tr *obs.Trace) bool {
	if r.ContentLength > maxReqFrame {
		writeError(w, http.StatusBadRequest, "frame of %d bytes exceeds the %d cap", r.ContentLength, maxReqFrame)
		return false
	}
	buf := routerBufPool.Get().(*routerBuf)
	defer routerBufPool.Put(buf)

	spDecode := tr.Start("decode")
	var err error
	buf.in, err = readAll(buf.in[:0], r.Body, maxReqFrame)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read frame: %v", err)
		return false
	}
	if len(buf.in) < prefixLen+reqHeaderLen {
		writeError(w, http.StatusBadRequest, "frame of %d bytes is shorter than a request header", len(buf.in))
		return false
	}
	if got, want := binary.BigEndian.Uint32(buf.in), uint32(len(buf.in)-prefixLen); got != want {
		writeError(w, http.StatusBadRequest, "length prefix %d, body carries %d frame bytes", got, want)
		return false
	}
	if buf.in[prefixLen] != wire.Version {
		writeError(w, http.StatusBadRequest, "frame version %d, router speaks %d", buf.in[prefixLen], wire.Version)
		return false
	}
	spDecode.End()

	status, out, err := rt.forward(r.Context(), tr, buf)
	if err != nil {
		writeForwardError(w, err)
		return false
	}
	spRespond := tr.Start("respond")
	ct := "application/json" // replica errors are JSON bodies even on this path
	if status == http.StatusOK {
		ct = wire.ContentType
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", fmt.Sprint(len(out)))
	w.WriteHeader(status)
	w.Write(out)
	spRespond.End()
	return status == http.StatusOK
}

// predictJSON is the transcode arm: JSON lives only at this edge. The
// request becomes one binary frame (f64 payload, so scores round-trip
// bit-identical to a direct JSON predict), the replica's binary response
// becomes the serve package's JSON response shape.
func (rt *Router) predictJSON(w http.ResponseWriter, r *http.Request, tr *obs.Trace) bool {
	spDecode := tr.Start("decode")
	var req serve.PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	events := req.Events
	if len(req.Features) > 0 {
		events = append(events, req.Features)
	}
	if len(events) == 0 {
		writeError(w, http.StatusBadRequest, "no events in request")
		return false
	}
	buf := routerBufPool.Get().(*routerBuf)
	defer routerBufPool.Put(buf)
	frame, err := wire.AppendRequest(buf.in[:0], events, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "encode frame: %v", err)
		return false
	}
	buf.in = frame
	spDecode.End()

	status, out, err := rt.forward(r.Context(), tr, buf)
	if err != nil {
		writeForwardError(w, err)
		return false
	}
	spRespond := tr.Start("respond")
	defer spRespond.End()
	if status != http.StatusOK {
		// The replica's error body is already JSON; pass it through.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(out)
		return false
	}
	resp, err := wire.DecodeResponse(out)
	if err != nil {
		writeError(w, http.StatusBadGateway, "replica response frame: %v", err)
		return false
	}
	preds := make([]serve.Prediction, len(resp.Class))
	for i := range preds {
		preds[i] = serve.Prediction{Class: resp.Class[i], SignalScore: resp.Score[i]}
	}
	writeJSON(w, http.StatusOK, serve.PredictResponse{Predictions: preds})
	return true
}

// forward sends buf.in to a picked replica and buffers the response into
// buf.out. Transport failures (dial, write, or a death mid-response) eject
// toward the health threshold and are retried exactly once on a different
// replica — predicts are idempotent, so the only cost of the retry is
// latency (DESIGN.md §13). HTTP-level error statuses are deterministic
// rejections and are NOT retried; they pass through to the client.
func (rt *Router) forward(ctx context.Context, tr *obs.Trace, buf *routerBuf) (int, []byte, error) {
	key := uint64(0)
	if rt.pool.cfg.Pick == PickHash {
		h := fnv.New64a()
		h.Write(buf.in)
		key = h.Sum64()
	}
	spPick := tr.Start("pick")
	rep := rt.pool.pick(key, nil)
	spPick.End()
	if rep == nil {
		return 0, nil, errNoReplicas
	}
	status, out, err := rt.forwardOnce(ctx, tr, rep, buf)
	if err == nil {
		return status, out, nil
	}
	if ctx.Err() != nil {
		return 0, nil, ctx.Err()
	}
	rt.m.retries.Inc()
	retry := rt.pool.pick(key, rep)
	if retry == nil {
		return 0, nil, fmt.Errorf("%w: %v", errAllAttemptsFailed, err)
	}
	status, out, err2 := rt.forwardOnce(ctx, tr, retry, buf)
	if err2 != nil {
		return 0, nil, fmt.Errorf("%w: %v; retry: %v", errAllAttemptsFailed, err, err2)
	}
	return status, out, nil
}

// forwardOnce runs one replica round trip: POST the frame, buffer the whole
// response. Any transport error counts against the replica's health streak;
// any complete HTTP response (success or error status) clears it.
func (rt *Router) forwardOnce(ctx context.Context, tr *obs.Trace, rep *replica, buf *routerBuf) (int, []byte, error) {
	sp := tr.Start("forward")
	defer sp.End()
	started := time.Now()
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Inc()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/predict", bytes.NewReader(buf.in))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.ContentLength = int64(len(buf.in))
	resp, err := rep.client.Do(req)
	if err != nil {
		rt.pool.noteFailure(rep)
		return 0, nil, err
	}
	defer resp.Body.Close()
	buf.out, err = readAll(buf.out[:0], resp.Body, maxReqFrame)
	if err != nil {
		// Died mid-response: the request bytes are still intact in buf.in,
		// so the caller can retry on another replica.
		rt.pool.noteFailure(rep)
		return 0, nil, err
	}
	rt.pool.noteSuccess(rep)
	rep.forward.Observe(time.Since(started))
	return resp.StatusCode, buf.out, nil
}

func writeForwardError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errNoReplicas):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, 499, "client gone: %v", err) // nginx's client-closed-request code
	default:
		writeError(w, http.StatusBadGateway, "%v", err)
	}
}

// readAll reads r to EOF into dst (reused capacity), failing past max.
func readAll(dst []byte, r io.Reader, max int) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if len(dst) > max {
			return dst, fmt.Errorf("body exceeds %d bytes", max)
		}
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// handleReload is the bundle-push path (DESIGN.md §13): load new bundle
// bytes (from a local path or a raw request body) and distribute them to
// every member as an octet-stream /v1/reload. The push is atomic by
// generation: 200 means every member acknowledged the swap and reported its
// new generation; any failure reports 502 with the per-replica outcome so
// an operator can see exactly which members still run the old bundle.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var raw []byte
	var source string
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		var err error
		raw, err = readAll(nil, r.Body, maxBundleUpload)
		if err != nil {
			writeError(w, http.StatusBadRequest, "read bundle: %v", err)
			return
		}
		source = "push"
	} else {
		var req struct {
			Path string `json:"path,omitempty"`
		}
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
				return
			}
		}
		path := req.Path
		if path == "" {
			path = rt.reloadPath
		}
		if path == "" {
			writeError(w, http.StatusBadRequest, "no bundle: pass {\"path\": ...}, POST raw bytes, or start the router with a default")
			return
		}
		var err error
		raw, err = os.ReadFile(path)
		if err != nil {
			writeError(w, http.StatusBadRequest, "read bundle: %v", err)
			return
		}
		rt.reloadPath = path
		source = path
	}

	type outcome struct {
		Replica    string `json:"replica"`
		Generation uint64 `json:"generation,omitempty"`
		Error      string `json:"error,omitempty"`
	}
	reps := rt.pool.snapshot()
	if len(reps) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no replicas to push to")
		return
	}
	outcomes := make([]outcome, len(reps))
	var wg sync.WaitGroup
	wg.Add(len(reps))
	for i, rep := range reps {
		go func(i int, rep *replica) {
			defer wg.Done()
			outcomes[i] = rt.pushBundle(r.Context(), rep, raw)
		}(i, rep)
	}
	wg.Wait()
	allOK := true
	for _, o := range outcomes {
		if o.Error != "" {
			allOK = false
		}
	}
	status := http.StatusOK
	if allOK {
		rt.m.pushes.Inc()
	} else {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{
		"source":   source,
		"complete": allOK,
		"replicas": outcomes,
	})
}

// pushBundle sends bundle bytes to one replica and records the generation
// it came back with.
func (rt *Router) pushBundle(ctx context.Context, rep *replica, raw []byte) (o struct {
	Replica    string `json:"replica"`
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}) {
	o.Replica = rep.addr
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/reload", bytes.NewReader(raw))
	if err != nil {
		o.Error = err.Error()
		return o
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rep.client.Do(req)
	if err != nil {
		o.Error = err.Error()
		return o
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		o.Error = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		return o
	}
	var info struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &info); err == nil {
		o.Generation = info.Generation
		rep.generation.Store(info.Generation)
	}
	return o
}

// replicaHealth is one member's row in /healthz and /stats.
type replicaHealth struct {
	Addr       string `json:"addr"`
	Healthy    bool   `json:"healthy"`
	Inflight   int64  `json:"inflight"`
	Generation uint64 `json:"generation"`
	Fails      int64  `json:"consecutive_fails"`
}

func (rt *Router) replicaRows() (rows []replicaHealth, healthy int) {
	for _, rep := range rt.pool.snapshot() {
		h := rep.healthy.Load()
		if h {
			healthy++
		}
		rows = append(rows, replicaHealth{
			Addr:       rep.addr,
			Healthy:    h,
			Inflight:   rep.inflight.Load(),
			Generation: rep.generation.Load(),
			Fails:      rep.fails.Load(),
		})
	}
	return rows, healthy
}

// handleHealth reports ok / degraded / unavailable: ok with every member in
// rotation, degraded while at least one is ejected but predicts still have
// somewhere to go, unavailable (503) with nothing in rotation.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rows, healthy := rt.replicaRows()
	status, code := "ok", http.StatusOK
	switch {
	case healthy == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	case healthy < len(rows):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"healthy":  healthy,
		"replicas": rows,
	})
}

// handleStats is the human-readable counter view over the same instruments
// /metrics exposes.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rows, healthy := rt.replicaRows()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(rt.start).Seconds(),
		"requests":       rt.m.requests.Value(),
		"errors":         rt.m.errors.Value(),
		"shed":           rt.m.shed.Value(),
		"retries":        rt.m.retries.Value(),
		"ejections":      rt.m.ejections.Value(),
		"readmissions":   rt.m.readmissions.Value(),
		"bundle_pushes":  rt.m.pushes.Value(),
		"healthy":        healthy,
		"replicas":       rows,
	})
}
