package fleet

import (
	"streambrain/internal/obs"
)

// Fleet metric families (the DESIGN.md §11 catalogue, §13 additions).
// Declared as constants so tests, docs checks, and the /stats view all name
// the same strings.
const (
	metricRequests     = "streambrain_fleet_requests_total"
	metricErrors       = "streambrain_fleet_request_errors_total"
	metricShed         = "streambrain_fleet_shed_total"
	metricRetries      = "streambrain_fleet_retries_total"
	metricEjections    = "streambrain_fleet_ejections_total"
	metricReadmissions = "streambrain_fleet_readmissions_total"
	metricPushes       = "streambrain_fleet_bundle_pushes_total"
	metricReplicas     = "streambrain_fleet_replicas"
	metricHealthy      = "streambrain_fleet_healthy_replicas"
	metricInflight     = "streambrain_fleet_inflight"
	metricLatency      = "streambrain_fleet_request_seconds"
	metricForward      = "streambrain_fleet_forward_seconds"
	metricReplicaUp    = "streambrain_fleet_replica_up"
	metricReplicaInfl  = "streambrain_fleet_replica_inflight"
	metricReplicaGen   = "streambrain_fleet_replica_generation"
)

// Metrics is the fleet tier's instrument set over one obs.Registry. The
// pool and the router share one instance, so /stats, /metrics, and the
// health view are all reads of the same counters.
type Metrics struct {
	reg *obs.Registry

	requests     *obs.Counter
	errors       *obs.Counter
	shed         *obs.Counter
	retries      *obs.Counter
	ejections    *obs.Counter
	readmissions *obs.Counter
	pushes       *obs.Counter
	latency      *obs.Histogram
}

// NewMetrics registers the fleet instrument set on reg. A nil reg gets a
// private registry, so an uninstrumented pool still has working counters.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg: reg,
		requests: reg.Counter(metricRequests,
			"Predict requests completed by the router."),
		errors: reg.Counter(metricErrors,
			"Predict requests the router failed (no replicas, exhausted retry, bad input)."),
		shed: reg.Counter(metricShed,
			"Requests shed with 429 by admission control before reaching a replica."),
		retries: reg.Counter(metricRetries,
			"Idempotent predicts retried on a second replica after a transport failure."),
		ejections: reg.Counter(metricEjections,
			"Replicas ejected from rotation after consecutive health failures."),
		readmissions: reg.Counter(metricReadmissions,
			"Ejected replicas re-admitted after a successful health probe."),
		pushes: reg.Counter(metricPushes,
			"Bundle pushes distributed to every replica successfully."),
		latency: reg.LatencyHistogram(metricLatency,
			"End-to-end router predict latency, fan-out hop included."),
	}
}

// Registry returns the underlying obs registry (for mounting /metrics or
// registering neighbor-subsystem instruments alongside).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// registerReplica adds the per-replica labeled series for one member.
// Registration is idempotent per (name, replica) pair, so re-announcing a
// member is harmless.
func (m *Metrics) registerReplica(rep *replica) {
	l := obs.L("replica", rep.addr)
	rep.requests = m.reg.Counter(metricReplicaReqs,
		"Predict requests forwarded to this replica.", l)
	rep.forward = m.reg.LatencyHistogram(metricForward,
		"Router-observed latency of one replica forward hop.", l)
	m.reg.GaugeFunc(metricReplicaUp,
		"1 while the replica is in rotation, 0 while ejected.",
		func() float64 {
			if rep.healthy.Load() {
				return 1
			}
			return 0
		}, l)
	m.reg.GaugeFunc(metricReplicaInfl,
		"Requests currently in flight to this replica.",
		func() float64 { return float64(rep.inflight.Load()) }, l)
	m.reg.GaugeFunc(metricReplicaGen,
		"Bundle generation the replica last reported on /healthz.",
		func() float64 { return float64(rep.generation.Load()) }, l)
}

const metricReplicaReqs = "streambrain_fleet_replica_requests_total"
