package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/obs/obstest"
	"streambrain/internal/serve"
	"streambrain/internal/serve/wire"
)

// ------------------------------------------------------------------ fixture

// The fleet tests share one tiny trained bundle: training dominates test
// wall time, and every test only needs "a real model whose predictions we
// can compare bit-for-bit".
var (
	fixtureOnce   sync.Once
	fixtureRaw    []byte
	fixtureEvents [][]float64
)

func fixture(t testing.TB) ([]byte, [][]float64) {
	t.Helper()
	fixtureOnce.Do(func() {
		ds := higgs.Generate(800, 0.5, 3)
		rng := rand.New(rand.NewSource(11))
		trainDS, testDS := ds.Split(0.75, rng)
		enc := data.FitEncoder(trainDS, 8)
		encoded := enc.Transform(trainDS)
		p := core.DefaultParams()
		p.MCUs = 20
		p.ReceptiveField = 0.4
		p.UnsupervisedEpochs = 1
		p.SupervisedEpochs = 1
		p.Seed = 3
		net := core.NewNetwork(backend.MustNew("parallel", 1),
			encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p)
		net.Train(encoded)
		var buf bytes.Buffer
		if err := serve.SaveBundle(&buf, net, enc); err != nil {
			panic(err)
		}
		fixtureRaw = buf.Bytes()
		n := min(48, testDS.Len())
		fixtureEvents = make([][]float64, n)
		for i := range fixtureEvents {
			fixtureEvents[i] = testDS.X.Row(i)
		}
	})
	return fixtureRaw, fixtureEvents
}

// newReplica boots one in-process streambrain-serve replica over loopback
// and returns its test server (Listener.Addr() is the pool address).
func newReplica(t testing.TB, raw []byte) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry(1, serve.NamedBackendFactory("parallel", 1))
	if err := reg.LoadBytes(raw, "test", time.Now()); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg, serve.ServerConfig{
		Batcher: serve.BatcherConfig{MaxBatch: 16, MaxWait: 100 * time.Microsecond},
	}, "")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.CloseClientConnections()
		ts.Close()
		srv.Close()
	})
	return ts
}

func addrOf(ts *httptest.Server) string { return ts.Listener.Addr().String() }

// newFleet wires a pool + router over the given replica addresses. Probing
// is off unless cfg enables it, so tests control health transitions.
func newFleet(t testing.TB, cfg Config, addrs ...string) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = -1
	}
	if cfg.TraceEvery == 0 {
		cfg.TraceEvery = 1
	}
	pool := NewPool(cfg)
	for _, a := range addrs {
		pool.Add(a)
	}
	router := NewRouter(pool, "")
	front := httptest.NewServer(router.Handler())
	t.Cleanup(func() {
		front.CloseClientConnections()
		front.Close()
		router.Close()
	})
	return router, front
}

func jsonPredict(t testing.TB, url string, events [][]float64) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(serve.PredictRequest{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func wirePredict(t testing.TB, url string, events [][]float64) (int, []byte) {
	t.Helper()
	frame, err := wire.AppendRequest(nil, events, false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/predict", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// ------------------------------------------------------------------- tests

// The fleet acceptance bar: predictions through router + 2 replicas are
// bit-identical to a direct single-process serve, on both codecs.
func TestFleetBitExactWithDirectServe(t *testing.T) {
	raw, events := fixture(t)
	direct := newReplica(t, raw)
	r1, r2 := newReplica(t, raw), newReplica(t, raw)
	_, front := newFleet(t, Config{}, addrOf(r1), addrOf(r2))

	for i := 0; i < 8; i++ {
		batch := events[i*4 : i*4+4]
		st, wantJSON := jsonPredict(t, direct.URL, batch)
		if st != http.StatusOK {
			t.Fatalf("direct JSON status %d: %s", st, wantJSON)
		}
		st, gotJSON := jsonPredict(t, front.URL, batch)
		if st != http.StatusOK {
			t.Fatalf("router JSON status %d: %s", st, gotJSON)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("JSON mismatch:\ndirect %s\nrouter %s", wantJSON, gotJSON)
		}
		st, wantBin := wirePredict(t, direct.URL, batch)
		if st != http.StatusOK {
			t.Fatalf("direct wire status %d", st)
		}
		st, gotBin := wirePredict(t, front.URL, batch)
		if st != http.StatusOK {
			t.Fatalf("router wire status %d", st)
		}
		if !bytes.Equal(wantBin, gotBin) {
			t.Fatalf("wire frame mismatch on batch %d", i)
		}
	}
}

// Kill one of two replicas mid-run: every client request must still
// succeed, with exactly the transparent retry absorbing the death.
func TestFleetSurvivesReplicaKill(t *testing.T) {
	raw, events := fixture(t)
	r1, r2 := newReplica(t, raw), newReplica(t, raw)
	router, front := newFleet(t, Config{FailAfter: 1}, addrOf(r1), addrOf(r2))

	const total = 120
	for i := 0; i < total; i++ {
		if i == total/2 {
			r1.CloseClientConnections()
			r1.Close()
		}
		st, body := jsonPredict(t, front.URL, events[:2])
		if st != http.StatusOK {
			t.Fatalf("request %d failed with %d: %s", i, st, body)
		}
	}
	if got := router.m.retries.Value(); got < 1 {
		t.Fatalf("expected at least one transparent retry, counter = %d", got)
	}
	if got := router.m.errors.Value(); got != 0 {
		t.Fatalf("client-visible errors = %d, want 0", got)
	}
	if got := router.m.ejections.Value(); got < 1 {
		t.Fatalf("expected the dead replica ejected, counter = %d", got)
	}
}

// A replica that dies mid-request (connection cut after headers are read)
// must be retried once; when every replica does that, the client gets a
// fast 502, not a hang.
func TestFleetRetryThenBadGateway(t *testing.T) {
	dieHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	})
	d1, d2 := httptest.NewServer(dieHandler), httptest.NewServer(dieHandler)
	defer d1.Close()
	defer d2.Close()

	t.Run("one dying replica retries onto a live one", func(t *testing.T) {
		raw, events := fixture(t)
		live := newReplica(t, raw)
		router, front := newFleet(t, Config{FailAfter: 1}, addrOf(d1), addrOf(live))
		for i := 0; i < 4; i++ {
			st, body := jsonPredict(t, front.URL, events[:1])
			if st != http.StatusOK {
				t.Fatalf("request %d: status %d: %s", i, st, body)
			}
		}
		if router.m.retries.Value() < 1 {
			t.Fatal("expected a retry against the dying replica")
		}
	})

	t.Run("all replicas dying yields 502 then fast 503", func(t *testing.T) {
		_, events := fixture(t)
		router, front := newFleet(t, Config{FailAfter: 1}, addrOf(d1), addrOf(d2))
		start := time.Now()
		st, _ := jsonPredict(t, front.URL, events[:1])
		if st != http.StatusBadGateway {
			t.Fatalf("first status %d, want 502", st)
		}
		// Both replicas are now ejected: no-replica requests are a fast 503.
		resp, err := http.Post(front.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"features": [1]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("second status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("503 missing Retry-After")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("all-down path took %s, want fast failure", elapsed)
		}
		if router.m.errors.Value() < 2 {
			t.Fatalf("errors counter = %d, want >= 2", router.m.errors.Value())
		}
	})
}

// Admission control: beyond MaxInflight concurrently admitted predicts the
// router sheds with 429 + Retry-After instead of queueing.
func TestFleetShedsWith429(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()
	router, front := newFleet(t, Config{MaxInflight: 1}, addrOf(slow))

	frame, err := wire.AppendRequest(nil, [][]float64{{0.5, 0.5}}, false)
	if err != nil {
		t.Fatal(err)
	}
	statuses := make(chan int, 4)
	retryAfter := make(chan string, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(front.URL+"/v1/predict", wire.ContentType, bytes.NewReader(frame))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
			retryAfter <- resp.Header.Get("Retry-After")
		}()
	}
	// Let the requests pile up against the held replica, then release.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	close(statuses)
	close(retryAfter)
	var ok200, shed429 int
	for st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Fatalf("unexpected status %d", st)
		}
	}
	if ok200 < 1 || shed429 < 1 {
		t.Fatalf("got %d OK / %d shed, want at least one of each", ok200, shed429)
	}
	sawRetryAfter := false
	for ra := range retryAfter {
		if ra != "" {
			sawRetryAfter = true
		}
	}
	if !sawRetryAfter {
		t.Fatal("no 429 carried Retry-After")
	}
	if router.m.shed.Value() != uint64(shed429) {
		t.Fatalf("shed counter %d, responses %d", router.m.shed.Value(), shed429)
	}
}

// Active probing ejects a dead replica, /healthz degrades, and a restart on
// the same address is re-admitted.
func TestFleetEjectionAndReadmission(t *testing.T) {
	raw, events := fixture(t)
	stable := newReplica(t, raw)

	// The flappable replica: a plain http.Server we can kill and restart on
	// the same port (Go listeners set SO_REUSEADDR).
	reg := serve.NewRegistry(1, serve.NamedBackendFactory("parallel", 1))
	if err := reg.LoadBytes(raw, "test", time.Now()); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg, serve.ServerConfig{
		Batcher: serve.BatcherConfig{MaxBatch: 16, MaxWait: 100 * time.Microsecond},
	}, "")
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flappyAddr := ln.Addr().String()
	flappy := &http.Server{Handler: srv.Handler()}
	go flappy.Serve(ln)

	router, front := newFleet(t, Config{
		HealthEvery:  20 * time.Millisecond,
		FailAfter:    2,
		ProbeTimeout: 200 * time.Millisecond,
	}, addrOf(stable), flappyAddr)

	waitHealth := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(front.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var body struct {
				Status string `json:"status"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if body.Status == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("healthz stuck at %q, want %q", body.Status, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitHealth("ok")
	flappy.Close() // hard stop: refuses new conns, kills established ones
	waitHealth("degraded")
	if router.m.ejections.Value() < 1 {
		t.Fatal("no ejection recorded")
	}
	// Predicts keep working while degraded.
	if st, body := jsonPredict(t, front.URL, events[:1]); st != http.StatusOK {
		t.Fatalf("degraded predict status %d: %s", st, body)
	}

	// Resurrect on the same address; the prober must re-admit it.
	ln2, err := net.Listen("tcp", flappyAddr)
	if err != nil {
		t.Fatal(err)
	}
	flappy2 := &http.Server{Handler: srv.Handler()}
	go flappy2.Serve(ln2)
	defer flappy2.Close()
	waitHealth("ok")
	if router.m.readmissions.Value() < 1 {
		t.Fatal("no readmission recorded")
	}
}

// The bundle-push path: POST /v1/reload on the router lands the new bundle
// on every replica, reported atomically by generation.
func TestFleetBundlePush(t *testing.T) {
	raw, _ := fixture(t)
	r1, r2 := newReplica(t, raw), newReplica(t, raw)
	router, front := newFleet(t, Config{}, addrOf(r1), addrOf(r2))

	path := filepath.Join(t.TempDir(), "push.bundle")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, path)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Complete bool `json:"complete"`
		Replicas []struct {
			Replica    string `json:"replica"`
			Generation uint64 `json:"generation"`
			Error      string `json:"error"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !out.Complete {
		t.Fatalf("push status %d complete=%v: %+v", resp.StatusCode, out.Complete, out)
	}
	if len(out.Replicas) != 2 {
		t.Fatalf("%d replica outcomes, want 2", len(out.Replicas))
	}
	for _, o := range out.Replicas {
		// Each replica loaded the fixture at generation 1; the push is its
		// second load.
		if o.Generation != 2 || o.Error != "" {
			t.Fatalf("replica %s: generation %d error %q", o.Replica, o.Generation, o.Error)
		}
	}
	if router.m.pushes.Value() != 1 {
		t.Fatalf("pushes counter %d, want 1", router.m.pushes.Value())
	}

	// A push with a dead member is incomplete and says which member failed.
	r2.CloseClientConnections()
	r2.Close()
	resp2, err := http.Post(front.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, path)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial push status %d, want 502", resp2.StatusCode)
	}
}

// Dynamic membership: a replica announcing over the mpi bootstrap framing
// lands in the pool and serves traffic.
func TestFleetJoinMembership(t *testing.T) {
	raw, events := fixture(t)
	r1 := newReplica(t, raw)
	router, front := newFleet(t, Config{})
	jln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	router.Pool().ServeJoin(jln)

	table, err := Announce(jln.Addr().String(), r1.Listener)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1 || table[0] != addrOf(r1) {
		t.Fatalf("member table %v, want [%s]", table, addrOf(r1))
	}
	if got := router.Pool().Addrs(); len(got) != 1 || got[0] != addrOf(r1) {
		t.Fatalf("pool members %v", got)
	}
	if st, body := jsonPredict(t, front.URL, events[:1]); st != http.StatusOK {
		t.Fatalf("predict via joined member: status %d: %s", st, body)
	}
	// Re-announcing (a restart) is idempotent.
	if _, err := Announce(jln.Addr().String(), r1.Listener); err != nil {
		t.Fatal(err)
	}
	if got := router.Pool().Addrs(); len(got) != 1 {
		t.Fatalf("re-announce duplicated the member: %v", got)
	}
}

// Router shutdown leaves no goroutines behind: prober, join accept loop,
// and the replicas' connection pools all wind down.
func TestFleetShutdownNoLeaks(t *testing.T) {
	raw, events := fixture(t) // train outside the leak window
	defer obstest.CheckLeaks(t)()

	// The replica is built by hand (not newReplica) so its teardown happens
	// inside this test body, before the deferred leak check runs.
	reg := serve.NewRegistry(1, serve.NamedBackendFactory("parallel", 1))
	if err := reg.LoadBytes(raw, "test", time.Now()); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg, serve.ServerConfig{
		Batcher: serve.BatcherConfig{MaxBatch: 16, MaxWait: 100 * time.Microsecond},
	}, "")
	rts := httptest.NewServer(srv.Handler())

	pool := NewPool(Config{HealthEvery: 20 * time.Millisecond, TraceEvery: 1})
	pool.Add(rts.Listener.Addr().String())
	jln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool.ServeJoin(jln)
	router := NewRouter(pool, "")
	front := httptest.NewServer(router.Handler())
	if st, _ := jsonPredict(t, front.URL, events[:1]); st != http.StatusOK {
		t.Fatalf("predict status %d", st)
	}
	front.CloseClientConnections()
	front.Close()
	router.Close()
	rts.CloseClientConnections()
	rts.Close()
	srv.Close()
}

// Rendezvous hashing: the same payload maps to the same replica while
// membership is stable, and survives excluding the picked member.
func TestPickHashStable(t *testing.T) {
	pool := NewPool(Config{Pick: PickHash, HealthEvery: -1})
	defer pool.Close()
	for _, a := range []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"} {
		pool.Add(a)
	}
	first := pool.pick(42, nil)
	for i := 0; i < 16; i++ {
		if got := pool.pick(42, nil); got != first {
			t.Fatalf("pick not stable: %s then %s", first.addr, got.addr)
		}
	}
	second := pool.pick(42, first)
	if second == nil || second == first {
		t.Fatal("exclusion did not yield a different replica")
	}
	if third := pool.pick(7, nil); third == nil {
		t.Fatal("different key picked nothing")
	}
}

// The binary pass-through validates only the outer frame bounds and rejects
// malformed outer frames before burning a replica round trip.
func TestRouterWireOuterValidation(t *testing.T) {
	raw, _ := fixture(t)
	r1 := newReplica(t, raw)
	_, front := newFleet(t, Config{}, addrOf(r1))

	post := func(body []byte) int {
		resp, err := http.Post(front.URL+"/v1/predict", wire.ContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := post([]byte{0, 0}); st != http.StatusBadRequest {
		t.Fatalf("short frame: status %d, want 400", st)
	}
	if st := post([]byte{0, 0, 0, 99, 1, 1, 0, 1, 0, 1}); st != http.StatusBadRequest {
		t.Fatalf("lying length prefix: status %d, want 400", st)
	}
	if st := post([]byte{0, 0, 0, 6, 9, 1, 0, 1, 0, 1}); st != http.StatusBadRequest {
		t.Fatalf("bad version: status %d, want 400", st)
	}
	// Inner geometry errors pass through as the replica's typed 400.
	frame := []byte{0, 0, 0, 6, 1, 1, 0, 0, 0, 0} // zero rows/cols
	if st := post(frame); st != http.StatusBadRequest {
		t.Fatalf("replica-rejected frame: status %d, want 400", st)
	}
}
