package fleet

import (
	"fmt"
	"net"
	"time"

	"streambrain/internal/mpi"
)

// Fleet membership rides the mpi rendezvous bootstrap framing (DESIGN.md
// §10, §13): a joining replica dials the router's membership listener,
// announces its serve address with the same magic-prefixed hello frame a
// rank sends to rank 0, and gets the current member address table back as
// the acknowledgement. Rank is 0 and world size is 0 on this path —
// fleet membership is open-ended where rank rendezvous is fixed-size.

// ServeJoin accepts replica announcements on ln until the pool closes or
// the listener is shut down. Each accepted member is added to the pool
// (idempotently) and receives the membership table as acknowledgement.
// The pool takes ownership of ln: Close closes it.
func (p *Pool) ServeJoin(ln net.Listener) {
	p.mu.Lock()
	p.joinLns = append(p.joinLns, ln)
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by Close
			}
			go p.handleJoin(conn)
		}
	}()
}

// handleJoin runs one announcement exchange. A stream without the bootstrap
// magic is dropped before it can touch the membership table.
func (p *Pool) handleJoin(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	_, _, addr, err := mpi.ReadHello(conn)
	if err != nil {
		return
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return
	}
	p.Add(addr)
	mpi.WriteAddrTable(conn, p.Addrs())
}

// Announce registers the replica listening on ln with the fleet membership
// listener at fleetAddr and returns the member table the router replied
// with. The advertised address is ln's port joined with the host the
// membership connection sees, so `-addr 127.0.0.1:0` replicas announce a
// dialable address.
func Announce(fleetAddr string, ln net.Listener) ([]string, error) {
	conn, err := net.DialTimeout("tcp", fleetAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("fleet: announce dial %s: %w", fleetAddr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	addr := mpi.AdvertisedAddr(ln, conn)
	if err := mpi.WriteHello(conn, 0, 0, addr); err != nil {
		return nil, fmt.Errorf("fleet: announce hello: %w", err)
	}
	table, err := mpi.ReadAddrTable(conn)
	if err != nil {
		return nil, fmt.Errorf("fleet: announce ack: %w", err)
	}
	return table, nil
}
