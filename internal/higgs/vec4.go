// Package higgs is the high-energy-physics substrate: a synthetic generator
// for the HIGGS benchmark dataset of Baldi, Sadowski & Whiteson (Nature
// Communications 2014) — the dataset the paper classifies — plus a loader
// for the real UCI CSV when it is available.
//
// The real dataset is an 11M-event, 2 GB Monte-Carlo sample that cannot be
// downloaded in this environment, so we rebuild its generating process at
// small scale (DESIGN.md §1): signal events follow the benchmark decay chain
// gg → H⁰ → W∓H± → W∓W±h⁰ with h⁰ → bb̄, and background events are tt̄
// production with the identical ℓν + 4-jet final state. Both are produced
// with genuine relativistic kinematics (two-body decays in the parent rest
// frame, Lorentz boosts), passed through a toy detector (Gaussian energy
// smearing, b-tag efficiency/mis-tag), and summarized as the same 28
// features: 21 low-level kinematics and 7 high-level invariant masses
// computed from the reconstructed objects.
package higgs

import (
	"math"
	"math/rand"
)

// Vec4 is a relativistic four-momentum (E, px, py, pz) in GeV.
type Vec4 struct {
	E, Px, Py, Pz float64
}

// FromPtEtaPhiM builds a four-momentum from collider coordinates:
// transverse momentum, pseudorapidity, azimuth, and invariant mass.
func FromPtEtaPhiM(pt, eta, phi, m float64) Vec4 {
	px := pt * math.Cos(phi)
	py := pt * math.Sin(phi)
	pz := pt * math.Sinh(eta)
	e := math.Sqrt(m*m + px*px + py*py + pz*pz)
	return Vec4{E: e, Px: px, Py: py, Pz: pz}
}

// Add returns the four-vector sum.
func (v Vec4) Add(o Vec4) Vec4 {
	return Vec4{v.E + o.E, v.Px + o.Px, v.Py + o.Py, v.Pz + o.Pz}
}

// P2 returns the squared three-momentum magnitude.
func (v Vec4) P2() float64 { return v.Px*v.Px + v.Py*v.Py + v.Pz*v.Pz }

// M returns the invariant mass sqrt(max(0, E²−|p|²)); the max guards
// round-off for massless particles.
func (v Vec4) M() float64 {
	m2 := v.E*v.E - v.P2()
	if m2 <= 0 {
		return 0
	}
	return math.Sqrt(m2)
}

// Pt returns the transverse momentum.
func (v Vec4) Pt() float64 { return math.Hypot(v.Px, v.Py) }

// Phi returns the azimuthal angle in (−π, π].
func (v Vec4) Phi() float64 { return math.Atan2(v.Py, v.Px) }

// Eta returns the pseudorapidity −ln tan(θ/2); it is clamped to ±10 for
// vanishing transverse momentum so downstream feature code never sees ±Inf.
func (v Vec4) Eta() float64 {
	p := math.Sqrt(v.P2())
	if p == 0 {
		return 0
	}
	cos := v.Pz / p
	if cos >= 1 {
		return 10
	}
	if cos <= -1 {
		return -10
	}
	eta := 0.5 * math.Log((1+cos)/(1-cos))
	if eta > 10 {
		return 10
	}
	if eta < -10 {
		return -10
	}
	return eta
}

// Boost applies a Lorentz boost with velocity β = (bx, by, bz), |β| < 1.
func (v Vec4) Boost(bx, by, bz float64) Vec4 {
	b2 := bx*bx + by*by + bz*bz
	if b2 <= 0 {
		return v
	}
	gamma := 1 / math.Sqrt(1-b2)
	bp := bx*v.Px + by*v.Py + bz*v.Pz
	gamma2 := (gamma - 1) / b2
	return Vec4{
		E:  gamma * (v.E + bp),
		Px: v.Px + gamma2*bp*bx + gamma*bx*v.E,
		Py: v.Py + gamma2*bp*by + gamma*by*v.E,
		Pz: v.Pz + gamma2*bp*bz + gamma*bz*v.E,
	}
}

// BoostToFrameOf boosts v into the lab frame of a parent with four-momentum
// p (i.e. applies the boost that takes the parent's rest frame to the lab).
func (v Vec4) BoostToFrameOf(p Vec4) Vec4 {
	if p.E <= 0 {
		return v
	}
	return v.Boost(p.Px/p.E, p.Py/p.E, p.Pz/p.E)
}

// TwoBodyDecay decays a parent four-momentum into two daughters of masses
// m1, m2, isotropically in the parent rest frame, and returns both daughters
// in the lab frame. If the decay is kinematically closed (M < m1+m2, which
// can happen after resonance-width sampling), the parent mass is lifted to
// the threshold so generation never fails.
func TwoBodyDecay(parent Vec4, m1, m2 float64, rng *rand.Rand) (Vec4, Vec4) {
	m := parent.M()
	if m < m1+m2 {
		m = (m1 + m2) * 1.0001
		// Rebuild the parent at threshold mass with the same three-momentum.
		parent.E = math.Sqrt(m*m + parent.P2())
	}
	// Momentum magnitude of either daughter in the rest frame.
	a := m*m - (m1+m2)*(m1+m2)
	b := m*m - (m1-m2)*(m1-m2)
	pstar := math.Sqrt(a*b) / (2 * m)
	// Isotropic direction.
	cos := 2*rng.Float64() - 1
	sin := math.Sqrt(1 - cos*cos)
	phi := 2 * math.Pi * rng.Float64()
	px := pstar * sin * math.Cos(phi)
	py := pstar * sin * math.Sin(phi)
	pz := pstar * cos
	d1 := Vec4{math.Sqrt(m1*m1 + pstar*pstar), px, py, pz}
	d2 := Vec4{math.Sqrt(m2*m2 + pstar*pstar), -px, -py, -pz}
	return d1.BoostToFrameOf(parent), d2.BoostToFrameOf(parent)
}

// TransverseMass returns the transverse mass of two objects — the standard
// W-reconstruction variable when the neutrino's longitudinal momentum is
// unmeasured: mT² = 2·pT1·pT2·(1−cos Δφ).
func TransverseMass(a, b Vec4) float64 {
	dphi := a.Phi() - b.Phi()
	mt2 := 2 * a.Pt() * b.Pt() * (1 - math.Cos(dphi))
	if mt2 <= 0 {
		return 0
	}
	return math.Sqrt(mt2)
}
