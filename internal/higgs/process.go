package higgs

import (
	"math"
	"math/rand"

	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// Benchmark particle masses (GeV) of the Baldi et al. process.
const (
	massH0     = 425.0 // heavy neutral Higgs, the signal resonance
	massHpm    = 325.0 // charged Higgs
	massHiggs  = 125.0 // light Higgs h⁰ → bb̄
	massW      = 80.4
	massTop    = 173.0
	massB      = 4.7
	massLepton = 0.106 // muon
)

// Detector model parameters. The widths are deliberately on the pessimistic
// side of LHC performance: they control how much signal and background
// overlap, and are tuned so attainable AUC lands in the band the paper and
// Baldi et al. report (strong learners ≈0.80–0.88, see EXPERIMENTS.md E6).
const (
	jetSmear    = 0.11 // relative jet energy resolution
	leptonSmear = 0.04
	metSmear    = 0.18
	btagEff     = 0.62 // probability a true b-jet is tagged
	btagMis     = 0.18 // probability a light jet is mis-tagged
)

// NumLowLevel and NumHighLevel give the feature split of the HIGGS schema.
const (
	NumLowLevel  = 21
	NumHighLevel = 7
	NumFeatures  = NumLowLevel + NumHighLevel
)

// FeatureNames lists the 28 columns in UCI HIGGS order.
var FeatureNames = []string{
	"lepton_pT", "lepton_eta", "lepton_phi",
	"missing_energy_magnitude", "missing_energy_phi",
	"jet1_pt", "jet1_eta", "jet1_phi", "jet1_btag",
	"jet2_pt", "jet2_eta", "jet2_phi", "jet2_btag",
	"jet3_pt", "jet3_eta", "jet3_phi", "jet3_btag",
	"jet4_pt", "jet4_eta", "jet4_phi", "jet4_btag",
	"m_jj", "m_jjj", "m_lv", "m_jlv", "m_bb", "m_wbb", "m_wwbb",
}

// event is a fully reconstructed ℓν+4-jet final state.
type event struct {
	lepton Vec4
	met    Vec4 // transverse only (pz = 0)
	jets   [4]Vec4
	btag   [4]float64 // observed tag weight
}

// gauss returns a normal sample with the given mean and width.
func gauss(rng *rand.Rand, mean, sigma float64) float64 {
	return mean + sigma*rng.NormFloat64()
}

// smearedMass samples a resonance mass around its pole with the given width,
// floored away from zero.
func smearedMass(rng *rand.Rand, pole, width float64) float64 {
	m := gauss(rng, pole, width)
	if m < pole/2 {
		m = pole / 2
	}
	return m
}

// primarySystem samples the production four-momentum of the hard system:
// modest transverse recoil, broad longitudinal momentum — the shape of a
// gluon-fusion initial state at a hadron collider.
func primarySystem(rng *rand.Rand, m float64) Vec4 {
	pt := rng.ExpFloat64() * 35
	phi := 2 * math.Pi * rng.Float64()
	pz := gauss(rng, 0, 250)
	px := pt * math.Cos(phi)
	py := pt * math.Sin(phi)
	e := math.Sqrt(m*m + px*px + py*py + pz*pz)
	return Vec4{E: e, Px: px, Py: py, Pz: pz}
}

// decayWToLepton decays a W into (charged lepton, neutrino).
func decayWToLepton(w Vec4, rng *rand.Rand) (lep, nu Vec4) {
	return TwoBodyDecay(w, massLepton, 0, rng)
}

// decayWToJets decays a W hadronically into two light quarks.
func decayWToJets(w Vec4, rng *rand.Rand) (q1, q2 Vec4) {
	return TwoBodyDecay(w, 0.3, 0.3, rng)
}

// signalEvent generates one event of the benchmark signal chain:
// gg → H⁰ → W∓ H±, H± → W± h⁰, h⁰ → bb̄; one W decays leptonically, the
// other hadronically (chosen at random).
func signalEvent(rng *rand.Rand) (lep, nu Vec4, quarks [4]Vec4, isB [4]bool) {
	h0 := primarySystem(rng, smearedMass(rng, massH0, 8))
	w1, hpm := TwoBodyDecay(h0, smearedMass(rng, massW, 2.1), smearedMass(rng, massHpm, 10), rng)
	w2, h := TwoBodyDecay(hpm, smearedMass(rng, massW, 2.1), smearedMass(rng, massHiggs, 4), rng)
	b1, b2 := TwoBodyDecay(h, massB, massB, rng)
	lepW, hadW := w1, w2
	if rng.Intn(2) == 0 {
		lepW, hadW = w2, w1
	}
	lep, nu = decayWToLepton(lepW, rng)
	q1, q2 := decayWToJets(hadW, rng)
	quarks = [4]Vec4{b1, b2, q1, q2}
	isB = [4]bool{true, true, false, false}
	return
}

// backgroundEvent generates one tt̄ event with the identical final state:
// t → W⁺b (leptonic W), t̄ → W⁻b̄ (hadronic W), sides swapped at random.
func backgroundEvent(rng *rand.Rand) (lep, nu Vec4, quarks [4]Vec4, isB [4]bool) {
	// tt̄ invariant mass: threshold plus a falling tail. The tail scale
	// keeps most tops barely boosted, which is what makes the background's
	// b-pair mass soft compared to the signal's 125 GeV resonance.
	mtt := 2*massTop + rng.ExpFloat64()*60
	sys := primarySystem(rng, mtt)
	t1, t2 := TwoBodyDecay(sys, smearedMass(rng, massTop, 4), smearedMass(rng, massTop, 4), rng)
	if rng.Intn(2) == 0 {
		t1, t2 = t2, t1
	}
	wLep, b1 := TwoBodyDecay(t1, smearedMass(rng, massW, 2.1), massB, rng)
	wHad, b2 := TwoBodyDecay(t2, smearedMass(rng, massW, 2.1), massB, rng)
	lep, nu = decayWToLepton(wLep, rng)
	q1, q2 := decayWToJets(wHad, rng)
	quarks = [4]Vec4{b1, b2, q1, q2}
	isB = [4]bool{true, true, false, false}
	return
}

// smearVec rescales a four-momentum's energy scale by a Gaussian factor —
// the toy calorimeter.
func smearVec(v Vec4, rel float64, rng *rand.Rand) Vec4 {
	f := 1 + rel*rng.NormFloat64()
	if f < 0.1 {
		f = 0.1
	}
	return Vec4{E: v.E * f, Px: v.Px * f, Py: v.Py * f, Pz: v.Pz * f}
}

// reconstruct applies the detector model and assembles the observed event:
// smeared lepton, smeared jets sorted by descending pT, observed b-tag
// weights, and MET built from the (smeared) neutrino transverse momentum.
func reconstruct(lep, nu Vec4, quarks [4]Vec4, isB [4]bool, rng *rand.Rand) event {
	var ev event
	ev.lepton = smearVec(lep, leptonSmear, rng)

	type jet struct {
		p   Vec4
		tag float64
	}
	jets := make([]jet, 4)
	for i, q := range quarks {
		p := smearVec(q, jetSmear, rng)
		// Observed tag weight: tagged jets get a high weight, untagged a low
		// one, with efficiency/mis-tag flips. The continuous weights mimic
		// the discretized tagger output in the UCI columns.
		tagged := false
		if isB[i] {
			tagged = rng.Float64() < btagEff
		} else {
			tagged = rng.Float64() < btagMis
		}
		w := 0.0
		if tagged {
			w = 1.5 + rng.Float64()
		} else {
			w = rng.Float64() * 0.9
		}
		jets[i] = jet{p: p, tag: w}
	}
	// pT-descending jet ordering, as in the real dataset.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if jets[j].p.Pt() > jets[i].p.Pt() {
				jets[i], jets[j] = jets[j], jets[i]
			}
		}
	}
	for i, j := range jets {
		ev.jets[i] = j.p
		ev.btag[i] = j.tag
	}
	met := smearVec(nu, metSmear, rng)
	ev.met = Vec4{E: met.Pt(), Px: met.Px, Py: met.Py, Pz: 0}
	return ev
}

// features flattens a reconstructed event into the 28-column HIGGS schema.
// The high-level invariant masses are computed from the *observed* objects
// with tag-based assignment, so reconstruction confusion (mis-tags, smearing)
// degrades them exactly as in the real pipeline.
func (ev *event) features() []float64 {
	f := make([]float64, 0, NumFeatures)
	f = append(f, ev.lepton.Pt(), ev.lepton.Eta(), ev.lepton.Phi())
	f = append(f, ev.met.Pt(), ev.met.Phi())
	for i := 0; i < 4; i++ {
		f = append(f, ev.jets[i].Pt(), ev.jets[i].Eta(), ev.jets[i].Phi(), ev.btag[i])
	}

	// Tag-based assignment: the two highest-weight jets are the b
	// candidates, the other two the W candidates.
	order := [4]int{0, 1, 2, 3}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if ev.btag[order[j]] > ev.btag[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	b1, b2 := ev.jets[order[0]], ev.jets[order[1]]
	w1, w2 := ev.jets[order[2]], ev.jets[order[3]]

	wjj := w1.Add(w2)
	mjj := wjj.M()                                              // hadronic W candidate
	mjjj := wjj.Add(b1).M()                                     // hadronic top candidate (tt̄ peaks at 173)
	mlv := TransverseMass(ev.lepton, ev.met)                    // leptonic W (peaks for both classes)
	mjlv := ev.lepton.Add(ev.met).Add(b2).M()                   // leptonic top candidate
	mbb := b1.Add(b2).M()                                       // h⁰ candidate (signal peaks at 125)
	mwbb := wjj.Add(b1).Add(b2).M()                             // H± candidate (signal peaks at 325)
	mwwbb := wjj.Add(b1).Add(b2).Add(ev.lepton).Add(ev.met).M() // H⁰ candidate

	f = append(f, mjj, mjjj, mlv, mjlv, mbb, mwbb, mwwbb)
	return f
}

// Generate produces a synthetic HIGGS dataset of n events with the given
// signal fraction (label 1 = signal s, 0 = background b), reproducible from
// the seed. Features follow the UCI column order.
func Generate(n int, signalFrac float64, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &data.Dataset{
		X:            tensor.NewMatrix(n, NumFeatures),
		Y:            make([]int, n),
		Classes:      2,
		FeatureNames: FeatureNames,
	}
	for i := 0; i < n; i++ {
		var lep, nu Vec4
		var quarks [4]Vec4
		var isB [4]bool
		label := 0
		if rng.Float64() < signalFrac {
			label = 1
			lep, nu, quarks, isB = signalEvent(rng)
		} else {
			lep, nu, quarks, isB = backgroundEvent(rng)
		}
		ev := reconstruct(lep, nu, quarks, isB, rng)
		copy(d.X.Row(i), ev.features())
		d.Y[i] = label
	}
	return d
}
