package higgs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streambrain/internal/metrics"
)

func TestFromPtEtaPhiMRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := 1 + rng.Float64()*200
		eta := rng.NormFloat64()
		phi := (rng.Float64()*2 - 1) * math.Pi
		m := rng.Float64() * 100
		v := FromPtEtaPhiM(pt, eta, phi, m)
		return math.Abs(v.Pt()-pt) < 1e-6*pt+1e-9 &&
			math.Abs(v.Eta()-eta) < 1e-9 &&
			math.Abs(v.Phi()-phi) < 1e-9 &&
			math.Abs(v.M()-m) < 1e-6*(m+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantMassAdditive(t *testing.T) {
	// Two massless back-to-back particles of energy E have pair mass 2E.
	a := Vec4{E: 50, Px: 50}
	b := Vec4{E: 50, Px: -50}
	if m := a.Add(b).M(); math.Abs(m-100) > 1e-9 {
		t.Fatalf("pair mass = %v, want 100", m)
	}
}

func TestBoostPreservesInvariantMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := FromPtEtaPhiM(10+rng.Float64()*100, rng.NormFloat64(),
			rng.Float64()*6-3, rng.Float64()*50)
		bx := rng.Float64()*1.2 - 0.6
		by := rng.Float64()*1.2 - 0.6
		bz := rng.Float64()*1.2 - 0.6
		if bx*bx+by*by+bz*bz >= 0.95 {
			return true // skip ultra-relativistic numerical edge
		}
		return math.Abs(v.Boost(bx, by, bz).M()-v.M()) < 1e-6*(v.M()+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoostZeroIsIdentity(t *testing.T) {
	v := Vec4{E: 10, Px: 1, Py: 2, Pz: 3}
	if v.Boost(0, 0, 0) != v {
		t.Fatal("zero boost changed the vector")
	}
}

// TestTwoBodyDecayConservation: daughters must conserve four-momentum and
// carry the requested masses — the core correctness property of the event
// generator.
func TestTwoBodyDecayConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		parent := FromPtEtaPhiM(rng.Float64()*100, rng.NormFloat64(),
			rng.Float64()*6-3, 150+rng.Float64()*300)
		m1 := rng.Float64() * 60
		m2 := rng.Float64() * 60
		d1, d2 := TwoBodyDecay(parent, m1, m2, rng)
		sum := d1.Add(d2)
		if math.Abs(sum.E-parent.E) > 1e-6*parent.E ||
			math.Abs(sum.Px-parent.Px) > 1e-6 ||
			math.Abs(sum.Py-parent.Py) > 1e-6 ||
			math.Abs(sum.Pz-parent.Pz) > 1e-6 {
			t.Fatalf("trial %d: momentum not conserved: %+v vs %+v", trial, sum, parent)
		}
		if math.Abs(d1.M()-m1) > 1e-5*(m1+1) || math.Abs(d2.M()-m2) > 1e-5*(m2+1) {
			t.Fatalf("trial %d: daughter masses %v/%v want %v/%v",
				trial, d1.M(), d2.M(), m1, m2)
		}
	}
}

func TestTwoBodyDecayBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	parent := FromPtEtaPhiM(20, 0.3, 1, 50) // lighter than m1+m2
	d1, d2 := TwoBodyDecay(parent, 40, 30, rng)
	if d1.M() <= 0 || d2.M() <= 0 {
		t.Fatal("threshold lift failed")
	}
}

func TestTransverseMassWPeak(t *testing.T) {
	// Leptonic W decays must produce a transverse-mass distribution bounded
	// by (and concentrated just below) the W mass.
	rng := rand.New(rand.NewSource(3))
	over := 0
	const n = 2000
	for i := 0; i < n; i++ {
		w := FromPtEtaPhiM(rng.Float64()*40, rng.NormFloat64(), 1, massW)
		lep, nu := decayWToLepton(w, rng)
		if TransverseMass(lep, nu) > massW*1.02 {
			over++
		}
	}
	if frac := float64(over) / n; frac > 0.02 {
		t.Fatalf("%.1f%% of mT above the W mass; kinematic edge violated", frac*100)
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	d := Generate(500, 0.5, 42)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 500 || d.Features() != NumFeatures {
		t.Fatalf("bad shape %dx%d", d.Len(), d.Features())
	}
	d2 := Generate(500, 0.5, 42)
	if !d.X.Equal(d2.X, 0) {
		t.Fatal("same seed produced different data")
	}
	d3 := Generate(500, 0.5, 43)
	if d.X.Equal(d3.X, 0) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateNoNaNs(t *testing.T) {
	d := Generate(3000, 0.5, 7)
	for i, v := range d.X.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite feature at flat index %d: %v", i, v)
		}
	}
}

func TestGenerateSignalFraction(t *testing.T) {
	d := Generate(4000, 0.3, 9)
	pos := 0
	for _, y := range d.Y {
		pos += y
	}
	frac := float64(pos) / 4000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("signal fraction %.3f, want ≈0.30", frac)
	}
}

// featureAUC computes the single-feature discrimination of column f.
func featureAUC(t *testing.T, f int) float64 {
	t.Helper()
	d := Generate(6000, 0.5, 11)
	col := make([]float64, d.Len())
	for r := 0; r < d.Len(); r++ {
		col[r] = d.X.At(r, f)
	}
	return metrics.AUC(col, d.Y)
}

// TestMbbIsDiscriminative: m_bb (the h⁰→bb̄ candidate) must separate signal
// from background — in signal it peaks at 125 GeV, in tt̄ it is broad.
// This is the physics the whole benchmark is built on.
func TestMbbIsDiscriminative(t *testing.T) {
	auc := featureAUC(t, 25) // m_bb
	// Direction may be either way; use distance from 0.5.
	if math.Abs(auc-0.5) < 0.05 {
		t.Fatalf("m_bb AUC %.3f too close to chance", auc)
	}
}

// TestMlvNotDiscriminative: both classes contain a real leptonic W, so the
// m_lv transverse mass must carry little discrimination (Baldi et al. make
// the same observation on the real data).
func TestMlvNotDiscriminative(t *testing.T) {
	auc := featureAUC(t, 23) // m_lv
	if math.Abs(auc-0.5) > 0.1 {
		t.Fatalf("m_lv AUC %.3f should be near chance", auc)
	}
}

// TestHighLevelBeatLowLevelPhi: azimuthal angles are rotationally symmetric
// and must be pure noise.
func TestPhiFeaturesAreNoise(t *testing.T) {
	for _, f := range []int{2, 4, 7} { // lepton_phi, met_phi, jet1_phi
		auc := featureAUC(t, f)
		if math.Abs(auc-0.5) > 0.035 {
			t.Fatalf("phi feature %d has AUC %.3f; symmetry broken", f, auc)
		}
	}
}

// TestMassPeaks verifies the resonance structure: signal m_bb concentrates
// near 125 GeV, background m_jjj near the top mass.
func TestMassPeaks(t *testing.T) {
	d := Generate(8000, 0.5, 13)
	var sigMbb, bkgMjjj []float64
	for r := 0; r < d.Len(); r++ {
		if d.Y[r] == 1 {
			sigMbb = append(sigMbb, d.X.At(r, 25))
		} else {
			bkgMjjj = append(bkgMjjj, d.X.At(r, 22))
		}
	}
	medMbb := metrics.Quantiles(sigMbb, 2)[0]
	if medMbb < 80 || medMbb > 180 {
		t.Fatalf("signal m_bb median %.1f GeV, want near 125", medMbb)
	}
	medMjjj := metrics.Quantiles(bkgMjjj, 2)[0]
	if medMjjj < 110 || medMjjj > 260 {
		t.Fatalf("background m_jjj median %.1f GeV, want near 173", medMjjj)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Generate(50, 0.5, 21)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 {
		t.Fatalf("round trip lost rows: %d", back.Len())
	}
	for i := 0; i < 50; i++ {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	if diff := back.X.MaxAbsDiff(d.X); diff > 1e-3 {
		t.Fatalf("feature round-trip error %g", diff)
	}
}

func TestReadCSVMaxRows(t *testing.T) {
	d := Generate(30, 0.5, 22)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 10 {
		t.Fatalf("maxRows ignored: %d", back.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString(""), 0); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1.0,2.0\n"), 0); err == nil {
		t.Fatal("short row accepted")
	}
	bad := "1.0" + string(bytes.Repeat([]byte(",x"), NumFeatures)) + "\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad), 0); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestLoadFallsBackToSynthetic(t *testing.T) {
	d, err := Load("", 0, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 {
		t.Fatalf("synthetic fallback size %d", d.Len())
	}
	if _, err := Load("/nonexistent/higgs.csv", 0, 10, 5); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEtaClamping(t *testing.T) {
	v := Vec4{E: 100, Pz: 100} // straight down the beam pipe
	if eta := v.Eta(); eta != 10 {
		t.Fatalf("forward eta = %v, want clamp 10", eta)
	}
	v2 := Vec4{E: 100, Pz: -100}
	if eta := v2.Eta(); eta != -10 {
		t.Fatalf("backward eta = %v, want clamp -10", eta)
	}
	if (Vec4{E: 1}).Eta() != 0 {
		t.Fatal("zero-momentum eta must be 0")
	}
}
