package higgs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// ReadCSV parses the UCI HIGGS CSV format: one event per line, first column
// the label (1.0 = signal, 0.0 = background) followed by the 28 features.
// maxRows > 0 truncates the read; 0 reads everything. This is the loader
// used when the real 2 GB dataset is available on disk.
func ReadCSV(r io.Reader, maxRows int) (*data.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var rows [][]float64
	var labels []int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != NumFeatures+1 {
			return nil, fmt.Errorf("higgs: line %d has %d columns, want %d",
				line, len(parts), NumFeatures+1)
		}
		lab, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("higgs: line %d label: %w", line, err)
		}
		row := make([]float64, NumFeatures)
		for i, p := range parts[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("higgs: line %d column %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
		if lab >= 0.5 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
		if maxRows > 0 && len(rows) >= maxRows {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("higgs: scan: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("higgs: empty input")
	}
	d := &data.Dataset{
		X:            tensor.NewMatrix(len(rows), NumFeatures),
		Y:            labels,
		Classes:      2,
		FeatureNames: FeatureNames,
	}
	for i, row := range rows {
		copy(d.X.Row(i), row)
	}
	return d, nil
}

// WriteCSV emits a dataset in the UCI HIGGS CSV format, the inverse of
// ReadCSV. The cmd/higgsgen tool uses it to materialize synthetic samples.
func WriteCSV(w io.Writer, d *data.Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%.6e", float64(d.Y[i])); err != nil {
			return err
		}
		row := d.X.Row(i)
		for _, v := range row {
			if _, err := fmt.Fprintf(bw, ",%.6e", v); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load returns a HIGGS dataset: if path is non-empty and exists, the real
// CSV is read (up to maxRows); otherwise a synthetic sample of n events is
// generated from the seed. This mirrors StreamBrain's data-loader behaviour
// of fetching well-known datasets on demand while remaining usable offline.
func Load(path string, maxRows, n int, seed int64) (*data.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("higgs: open %s: %w", path, err)
		}
		defer f.Close()
		return ReadCSV(f, maxRows)
	}
	return Generate(n, 0.5, seed), nil
}
