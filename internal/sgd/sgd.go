// Package sgd implements mini-batch softmax regression trained by
// stochastic gradient descent with momentum and L2 regularization. It is
// the "SGD" half of the paper's hybrid mode: StreamBrain combines the
// unsupervised BCPNN hidden layer with an SGD-trained classification layer
// ("the mixed BCPNN+SGD solution", §III; "combining unsupervised learning
// in StreamBrain with SGD reaches 69.15%", §V-A). The type satisfies
// core.Readout so it can be dropped into a Network in place of the pure
// BCPNN classifier.
package sgd

import (
	"math"
	"math/rand"

	"streambrain/internal/tensor"
)

// Config holds the optimizer hyperparameters.
type Config struct {
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient (0 disables).
	Momentum float64
	// L2 is the weight-decay coefficient.
	L2 float64
	// InitScale is the standard deviation of the random weight init.
	InitScale float64
}

// DefaultConfig returns the settings used by the hybrid experiments.
func DefaultConfig() Config {
	return Config{LearningRate: 0.1, Momentum: 0.9, L2: 1e-4, InitScale: 0.01}
}

// Softmax is a linear softmax classifier: logits = xW + b.
type Softmax struct {
	in, classes int
	cfg         Config

	W  *tensor.Matrix
	B  []float64
	vw *tensor.Matrix // momentum buffers
	vb []float64
}

// NewSoftmax builds a classifier from `in` features to `classes` classes.
func NewSoftmax(in, classes int, cfg Config, rng *rand.Rand) *Softmax {
	s := &Softmax{
		in: in, classes: classes, cfg: cfg,
		W:  tensor.NewMatrix(in, classes),
		B:  make([]float64, classes),
		vw: tensor.NewMatrix(in, classes),
		vb: make([]float64, classes),
	}
	for i := range s.W.Data {
		s.W.Data[i] = cfg.InitScale * rng.NormFloat64()
	}
	return s
}

// Classes implements core.Readout.
func (s *Softmax) Classes() int { return s.classes }

// Logits writes xW + b into out.
func (s *Softmax) Logits(x *tensor.Matrix, out *tensor.Matrix) {
	if x.Cols != s.in || out.Rows != x.Rows || out.Cols != s.classes {
		panic("sgd: Logits shape mismatch")
	}
	tensor.MatMulBlocked(out, x, s.W, 0)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c, b := range s.B {
			row[c] += b
		}
	}
}

// Scores implements core.Readout: class probabilities.
func (s *Softmax) Scores(x *tensor.Matrix, out *tensor.Matrix) {
	s.Logits(x, out)
	tensor.SoftmaxGroups(out, 1, s.classes, 1)
}

// TrainBatch implements core.Readout: one SGD step on the batch's mean
// cross-entropy gradient.
func (s *Softmax) TrainBatch(x *tensor.Matrix, labels []int) {
	if x.Rows != len(labels) {
		panic("sgd: TrainBatch batch mismatch")
	}
	b := x.Rows
	probs := tensor.NewMatrix(b, s.classes)
	s.Scores(x, probs)
	// grad_logits = (p − y)/B
	for r := 0; r < b; r++ {
		row := probs.Row(r)
		row[labels[r]] -= 1
		tensor.Scale(1/float64(b), row)
	}
	// gradW = xᵀ·grad + λW; gradB = column sums of grad.
	gradW := tensor.NewMatrix(s.in, s.classes)
	tensor.MatMulATB(gradW, x, probs)
	if s.cfg.L2 > 0 {
		tensor.Axpy(s.cfg.L2, s.W.Data, gradW.Data)
	}
	gradB := make([]float64, s.classes)
	for r := 0; r < b; r++ {
		row := probs.Row(r)
		for c, v := range row {
			gradB[c] += v
		}
	}
	// Momentum update: v = μv − ηg; θ += v.
	mu, lr := s.cfg.Momentum, s.cfg.LearningRate
	for i := range s.vw.Data {
		s.vw.Data[i] = mu*s.vw.Data[i] - lr*gradW.Data[i]
		s.W.Data[i] += s.vw.Data[i]
	}
	for c := range s.vb {
		s.vb[c] = mu*s.vb[c] - lr*gradB[c]
		s.B[c] += s.vb[c]
	}
}

// Loss returns the mean cross-entropy of the classifier on (x, labels) —
// used by convergence tests.
func (s *Softmax) Loss(x *tensor.Matrix, labels []int) float64 {
	probs := tensor.NewMatrix(x.Rows, s.classes)
	s.Scores(x, probs)
	var nll float64
	for r, y := range labels {
		p := probs.At(r, y)
		if p < 1e-15 {
			p = 1e-15
		}
		nll -= math.Log(p)
	}
	return nll / float64(len(labels))
}
