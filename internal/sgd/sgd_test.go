package sgd

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

// blobs generates two Gaussian clusters, linearly separable by `margin`.
func blobs(rng *rand.Rand, n int, margin float64) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		y[i] = c
		shift := -margin
		if c == 1 {
			shift = margin
		}
		x.Set(i, 0, rng.NormFloat64()+shift)
		x.Set(i, 1, rng.NormFloat64())
	}
	return x, y
}

func trainEpochs(s *Softmax, x *tensor.Matrix, y []int, epochs, batch int, rng *rand.Rand) {
	n := x.Rows
	for e := 0; e < epochs; e++ {
		perm := rng.Perm(n)
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			bx := tensor.NewMatrix(hi-lo, x.Cols)
			by := make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				copy(bx.Row(i-lo), x.Row(perm[i]))
				by[i-lo] = y[perm[i]]
			}
			s.TrainBatch(bx, by)
		}
	}
}

func accuracy(s *Softmax, x *tensor.Matrix, y []int) float64 {
	probs := tensor.NewMatrix(x.Rows, s.Classes())
	s.Scores(x, probs)
	correct := 0
	for r := range y {
		if tensor.ArgMaxRow(probs.Row(r)) == y[r] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

func TestSoftmaxLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 1000, 2.0)
	s := NewSoftmax(2, 2, DefaultConfig(), rng)
	trainEpochs(s, x, y, 20, 32, rng)
	if acc := accuracy(s, x, y); acc < 0.95 {
		t.Fatalf("accuracy %.3f on 2σ-separated blobs", acc)
	}
}

func TestLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := blobs(rng, 500, 1.0)
	s := NewSoftmax(2, 2, DefaultConfig(), rng)
	before := s.Loss(x, y)
	trainEpochs(s, x, y, 10, 32, rng)
	after := s.Loss(x, y)
	if after >= before {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", before, after)
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 100, 1.0)
	s := NewSoftmax(2, 2, DefaultConfig(), rng)
	trainEpochs(s, x, y, 3, 16, rng)
	probs := tensor.NewMatrix(x.Rows, 2)
	s.Scores(x, probs)
	for r := 0; r < x.Rows; r++ {
		row := probs.Row(r)
		if row[0] < 0 || row[1] < 0 || math.Abs(row[0]+row[1]-1) > 1e-9 {
			t.Fatalf("row %d not a distribution: %v", r, row)
		}
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := blobs(rng, 400, 3.0)
	weak := DefaultConfig()
	weak.L2 = 0
	strong := DefaultConfig()
	strong.L2 = 0.5
	s1 := NewSoftmax(2, 2, weak, rand.New(rand.NewSource(5)))
	s2 := NewSoftmax(2, 2, strong, rand.New(rand.NewSource(5)))
	trainEpochs(s1, x, y, 15, 32, rand.New(rand.NewSource(6)))
	trainEpochs(s2, x, y, 15, 32, rand.New(rand.NewSource(6)))
	norm := func(m *tensor.Matrix) float64 {
		var s float64
		for _, v := range m.Data {
			s += v * v
		}
		return s
	}
	if norm(s2.W) >= norm(s1.W) {
		t.Fatalf("L2=0.5 weights (%.4f) not smaller than L2=0 (%.4f)",
			norm(s2.W), norm(s1.W))
	}
}

func TestTrainBatchMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSoftmax(2, 2, DefaultConfig(), rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.TrainBatch(tensor.NewMatrix(3, 2), []int{0})
}

func TestMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 900
	x := tensor.NewMatrix(n, 2)
	y := make([]int, n)
	centers := [][2]float64{{0, 3}, {-3, -2}, {3, -2}}
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		y[i] = c
		x.Set(i, 0, rng.NormFloat64()*0.7+centers[c][0])
		x.Set(i, 1, rng.NormFloat64()*0.7+centers[c][1])
	}
	s := NewSoftmax(2, 3, DefaultConfig(), rng)
	trainEpochs(s, x, y, 25, 32, rng)
	if acc := accuracy(s, x, y); acc < 0.9 {
		t.Fatalf("3-class accuracy %.3f", acc)
	}
}
