package sgd

import (
	"encoding/gob"
	"fmt"
	"io"

	"streambrain/internal/tensor"
)

// softmaxState snapshots the full optimizer state — weights, biases, and the
// momentum buffers — so a loaded readout both predicts identically and
// resumes SGD training exactly where it stopped.
type softmaxState struct {
	Version     int
	In, Classes int
	Cfg         Config
	W, B        []float64
	VW, VB      []float64
}

const softmaxVersion = 1

// Save serializes the classifier with encoding/gob.
func (s *Softmax) Save(w io.Writer) error {
	st := softmaxState{
		Version: softmaxVersion,
		In:      s.in, Classes: s.classes, Cfg: s.cfg,
		W: s.W.Data, B: s.B, VW: s.vw.Data, VB: s.vb,
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("sgd: save: %w", err)
	}
	return nil
}

// Load reconstructs a Softmax from a Save stream.
func Load(r io.Reader) (*Softmax, error) {
	var st softmaxState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("sgd: load: %w", err)
	}
	if st.Version != softmaxVersion {
		return nil, fmt.Errorf("sgd: load: state version %d, want %d", st.Version, softmaxVersion)
	}
	if st.In < 1 || st.Classes < 2 {
		return nil, fmt.Errorf("sgd: load: bad geometry %dx%d", st.In, st.Classes)
	}
	n := st.In * st.Classes
	if len(st.W) != n || len(st.VW) != n || len(st.B) != st.Classes || len(st.VB) != st.Classes {
		return nil, fmt.Errorf("sgd: load: inconsistent state geometry")
	}
	s := &Softmax{
		in: st.In, classes: st.Classes, cfg: st.Cfg,
		W:  tensor.NewMatrix(st.In, st.Classes),
		B:  make([]float64, st.Classes),
		vw: tensor.NewMatrix(st.In, st.Classes),
		vb: make([]float64, st.Classes),
	}
	copy(s.W.Data, st.W)
	copy(s.B, st.B)
	copy(s.vw.Data, st.VW)
	copy(s.vb, st.VB)
	return s, nil
}

// In returns the input width the classifier was built for.
func (s *Softmax) In() int { return s.in }
