module streambrain

go 1.23
