module streambrain

go 1.24
