package streambrain

import (
	"fmt"
	"io"
	"math/rand"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/serve"
	"streambrain/internal/sgd"
)

// Params re-exports the BCPNN hyperparameter set.
type Params = core.Params

// Precision re-exports the compute-precision selector (Params.Precision):
// Float64 is the full-precision default, Float32 runs forward passes on the
// float32 kernel set while traces stay float64 (DESIGN.md §9).
type Precision = core.Precision

// Re-exported precision values.
const (
	Float64 = core.Float64
	Float32 = core.Float32
)

// EpochHook re-exports the per-epoch observation callback used by the
// in-situ visualization adaptors.
type EpochHook = core.EpochHook

// DefaultParams returns the experiment-default hyperparameters.
func DefaultParams() Params { return core.DefaultParams() }

// Config selects the execution backend and model variant.
type Config struct {
	// Backend names the compute backend: "naive", "parallel" or "gpusim".
	// Empty selects "parallel".
	Backend string
	// Workers sets the backend worker-team size (0 = GOMAXPROCS).
	Workers int
	// Params holds the BCPNN hyperparameters (zero value = DefaultParams).
	Params Params
	// HybridSGD replaces the BCPNN classification layer with the SGD
	// softmax readout — the paper's best-performing configuration
	// (69.15% accuracy / 76.4% AUC).
	HybridSGD bool
	// SGD configures the hybrid readout (zero value = sgd.DefaultConfig).
	SGD sgd.Config
}

// Model is a trained or trainable three-layer StreamBrain network.
type Model struct {
	net *core.Network
	cfg Config
}

// NewModel builds a model for one-hot input with the given geometry
// (hypercolumns × units each) and class count.
func NewModel(cfg Config, hypercolumns, unitsPerHC, classes int) (*Model, error) {
	if cfg.Backend == "" {
		cfg.Backend = "parallel"
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	be, err := backend.New(cfg.Backend, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if cfg.Params.Precision.Is32() {
		if _, err := backend.New32(cfg.Backend, cfg.Workers); err != nil {
			return nil, fmt.Errorf("streambrain: Precision %q: %w", cfg.Params.Precision, err)
		}
	}
	if hypercolumns < 1 || unitsPerHC < 1 || classes < 2 {
		return nil, fmt.Errorf("streambrain: bad geometry %dx%d classes=%d",
			hypercolumns, unitsPerHC, classes)
	}
	net := core.NewNetwork(be, hypercolumns, unitsPerHC, classes, cfg.Params)
	if cfg.HybridSGD {
		if cfg.SGD == (sgd.Config{}) {
			cfg.SGD = sgd.DefaultConfig()
		}
		rng := rand.New(rand.NewSource(cfg.Params.Seed + 1))
		net.SetReadout(sgd.NewSoftmax(net.Hidden.Units(), classes, cfg.SGD, rng))
	}
	return &Model{net: net, cfg: cfg}, nil
}

// Fit trains both phases (unsupervised feature learning, then the
// classifier) with the epoch counts in Params. Hooks observe the hidden
// layer after each unsupervised epoch.
func (m *Model) Fit(train *data.Encoded, hooks ...EpochHook) {
	m.net.Train(train, hooks...)
}

// FitUnsupervised runs only the feature-learning phase.
func (m *Model) FitUnsupervised(train *data.Encoded, epochs int, hooks ...EpochHook) {
	m.net.TrainUnsupervised(train, epochs, hooks...)
}

// FitSupervised runs only the classifier phase.
func (m *Model) FitSupervised(train *data.Encoded, epochs int) {
	m.net.TrainSupervised(train, epochs)
}

// Predict returns the predicted class per sample and, for binary problems,
// the signal probability used for ROC/AUC.
func (m *Model) Predict(ds *data.Encoded) (pred []int, signalScore []float64) {
	return m.net.Predict(ds)
}

// Evaluate returns test accuracy and (binary) AUC.
func (m *Model) Evaluate(ds *data.Encoded) (acc, auc float64) {
	return m.net.Evaluate(ds)
}

// Network exposes the underlying core network for advanced use (receptive-
// field inspection, custom readouts, visualization hooks).
func (m *Model) Network() *core.Network { return m.net }

// TrainSeconds reports accumulated wall-clock training time.
func (m *Model) TrainSeconds() float64 { return m.net.TrainTime.Seconds() }

// HiggsOptions configures LoadHiggs.
type HiggsOptions struct {
	// CSVPath optionally points at the real UCI HIGGS CSV; when empty a
	// synthetic sample is generated (see internal/higgs for the physics).
	CSVPath string
	// Events is the synthetic sample size (default 40000).
	Events int
	// PerClass bounds the balanced subset per class (default Events/4).
	PerClass int
	// TestFraction is the held-out share (default 0.25).
	TestFraction float64
	// Bins is the quantile-encoding bin count (default 10, as in §V).
	Bins int
	// Seed drives generation and splitting.
	Seed int64
}

// LoadHiggs runs the paper's full §V preprocessing pipeline: load (or
// synthesize) events, extract a balanced subset, split train/test, fit
// 10-quantile boundaries on the training split, and one-hot encode both.
// It returns the encoded splits plus the fitted encoder.
func LoadHiggs(opt HiggsOptions) (train, test *data.Encoded, enc *data.Encoder, err error) {
	if opt.Events <= 0 {
		opt.Events = 40000
	}
	if opt.TestFraction <= 0 || opt.TestFraction >= 1 {
		opt.TestFraction = 0.25
	}
	if opt.Bins <= 0 {
		opt.Bins = 10
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.PerClass <= 0 {
		opt.PerClass = opt.Events / 4
	}
	ds, err := higgs.Load(opt.CSVPath, 0, opt.Events, opt.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	balanced := ds.Balanced(opt.PerClass, rng)
	trainDS, testDS := balanced.Split(1-opt.TestFraction, rng)
	enc = data.FitEncoder(trainDS, opt.Bins)
	return enc.Transform(trainDS), enc.Transform(testDS), enc, nil
}

// Backends lists the registered compute backends.
func Backends() []string { return backend.Names() }

// SaveModel writes the trained model together with the fitted encoder as one
// self-contained bundle, the unit of deployment for cmd/streambrain-serve:
// a loaded bundle scores raw feature vectors end-to-end. Both readouts
// (pure BCPNN and the hybrid SGD softmax) round-trip.
func SaveModel(w io.Writer, m *Model, enc *data.Encoder) error {
	return serve.SaveBundle(w, m.net, enc)
}

// LoadModel reconstructs a model and its encoder from a SaveModel bundle.
// Only cfg.Backend and cfg.Workers are consulted (the backend is an
// execution concern, not model state); the hyperparameters come from the
// bundle itself.
func LoadModel(r io.Reader, cfg Config) (*Model, *data.Encoder, error) {
	if cfg.Backend == "" {
		cfg.Backend = "parallel"
	}
	be, err := backend.New(cfg.Backend, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	b, err := serve.LoadBundle(r, be)
	if err != nil {
		return nil, nil, err
	}
	cfg.Params = b.Net.Params()
	return &Model{net: b.Net, cfg: cfg}, b.Enc, nil
}
