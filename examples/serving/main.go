// Serving: the full online-inference loop in one process — train a small
// hybrid model, save it as a bundle (model + fitted encoder), serve it over
// HTTP with request micro-batching, score a raw event with a JSON POST, and
// read the batching stats back.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"streambrain"
	"streambrain/internal/higgs"
	"streambrain/internal/serve"
)

func main() {
	// 1. Train the paper's hybrid configuration at toy scale.
	train, test, enc, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 8000,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := streambrain.DefaultParams()
	params.MCUs = 100
	params.ReceptiveField = 0.40
	params.UnsupervisedEpochs = 3
	params.SupervisedEpochs = 3
	params.Seed = 42
	model, err := streambrain.NewModel(streambrain.Config{
		Backend:   "parallel",
		Params:    params,
		HybridSGD: true,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		log.Fatal(err)
	}
	model.Fit(train)
	acc, auc := model.Evaluate(test)
	fmt.Printf("trained: accuracy %.3f, AUC %.3f\n", acc, auc)

	// 2. Save the bundle: network and encoder travel together, so the
	//    serving process scores raw 28-feature events end-to-end.
	dir, err := os.MkdirTemp("", "streambrain-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bundlePath := filepath.Join(dir, "model.bundle")
	if err := serve.SaveBundleFile(bundlePath, model.Network(), enc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle saved to %s\n", bundlePath)

	// 3. Serve it. (cmd/streambrain-serve is the standalone equivalent.)
	reg := serve.NewRegistry(2, serve.NamedBackendFactory("parallel", 0))
	if err := reg.LoadFile(bundlePath); err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(reg, serve.ServerConfig{
		Batcher: serve.BatcherConfig{MaxBatch: 32, MaxWait: 2 * time.Millisecond},
	}, bundlePath)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// 4. Score a raw event exactly as an external client would.
	raw := higgs.Generate(1, 0.5, 7).X.Row(0)
	body, _ := json.Marshal(serve.PredictRequest{Events: [][]float64{raw}})
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	p := pr.Predictions[0]
	class := "background"
	if p.Class == 1 {
		class = "signal"
	}
	fmt.Printf("event scored: %s (signal probability %.3f)\n", class, p.SignalScore)

	// 5. Read the batching stats back.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %d requests, %d events in %d backend calls (avg batch %.1f), p50 %.2fms\n",
		st.Requests, st.Events, st.Batches, st.AvgBatch, st.Latency.P50Ms)
}
