// Hypersearch: tune BCPNN hyperparameters with the ask/tell black-box
// optimizers — the role Ax + Nevergrad play in the paper's workflow (§IV:
// "the formulation of BCPNN implies a larger number of hyperparameters...
// we use the Adaptive Exploration Platform together with Nevergrad").
package main

import (
	"fmt"
	"log"

	"streambrain"
	"streambrain/internal/hypersearch"
)

func main() {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 12000,
		Seed:   9,
	})
	if err != nil {
		log.Fatal(err)
	}

	space := hypersearch.Space{
		{Name: "taupdt", Kind: hypersearch.LogFloat, Lo: 0.003, Hi: 0.08},
		{Name: "rf", Kind: hypersearch.Float, Lo: 0.1, Hi: 0.9},
		{Name: "mcus", Kind: hypersearch.Choice, Choices: []float64{100, 200, 400}},
		{Name: "temperature", Kind: hypersearch.Float, Lo: 0.5, Hi: 2.0},
	}

	eval := func(x []float64) float64 {
		params := streambrain.DefaultParams()
		params.Taupdt = x[0]
		params.ReceptiveField = x[1]
		params.MCUs = int(x[2])
		params.Temperature = x[3]
		params.HCUs = 1
		params.UnsupervisedEpochs = 3
		params.SupervisedEpochs = 3
		params.Seed = 9
		model, err := streambrain.NewModel(streambrain.Config{
			Backend: "parallel",
			Params:  params,
		}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
		if err != nil {
			log.Fatal(err)
		}
		model.Fit(train)
		acc, _ := model.Evaluate(test)
		fmt.Printf("  taupdt=%.4f rf=%.2f mcus=%.0f T=%.2f -> acc %.4f\n",
			x[0], x[1], x[2], x[3], acc)
		return acc
	}

	fmt.Println("(1+1)-ES over 12 evaluations:")
	opt := hypersearch.NewOnePlusOne(space, 9)
	best, bestAcc := hypersearch.Run(opt, 12, eval)
	fmt.Printf("best: taupdt=%.4f rf=%.2f mcus=%.0f T=%.2f with accuracy %.4f\n",
		best[0], best[1], best[2], best[3], bestAcc)
}
