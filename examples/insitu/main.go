// Insitu: the Fig. 2 demonstration — in-situ visualization of the receptive
// fields while training runs. Every epoch the Catalyst-style adaptor chain
// co-processes the masks: VTI files (openable in ParaView), PNG montages,
// and a live HTTP endpoint you can watch in a browser.
package main

import (
	"fmt"
	"log"

	"streambrain"
	"streambrain/internal/core"
	"streambrain/internal/viz"
)

func main() {
	train, _, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 20000,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := streambrain.DefaultParams()
	params.HCUs = 4 // "four HCUs with a density of 40%" (§III-B)
	params.MCUs = 100
	params.ReceptiveField = 0.40
	params.UnsupervisedEpochs = 8
	params.SwapsPerEpoch = 3
	params.Seed = 3
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel",
		Params:  params,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		log.Fatal(err)
	}

	vti, err := viz.NewVTIWriter("insitu-out", "rf")
	if err != nil {
		log.Fatal(err)
	}
	png, err := viz.NewPNGWriter("insitu-out", "rf", 4, 16)
	if err != nil {
		log.Fatal(err)
	}
	live, err := viz.NewLiveServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	adaptors := viz.Multi{vti, png, live}
	fmt.Printf("live view: http://%s/ (refreshes every second)\n", live.Addr())

	// The epoch hook is the Catalyst co-processing trigger: reshape each
	// HCU's 28-feature mask into a 7x4 field and hand it to the adaptors.
	// It also applies any knobs the user POSTed to /control — the paper's
	// future-work idea of steering structural plasticity from the
	// visualization client (§VII), e.g.:
	//
	//	curl -X POST 'http://<addr>/control?key=swapsPerEpoch&value=8'
	hook := func(epoch int, hidden *core.HiddenLayer) {
		fields := make([]viz.Field, hidden.H)
		for h := 0; h < hidden.H; h++ {
			fields[h] = viz.BoolField(fmt.Sprintf("hcu%d", h), 7, 4,
				hidden.ReceptiveField(h))
		}
		if err := adaptors.CoProcess(epoch, fields); err != nil {
			log.Printf("co-processing: %v", err)
		}
		controls := live.Controls()
		if v, ok := controls["swapsPerEpoch"]; ok {
			hidden.SetSwapsPerEpoch(int(v))
		}
		if v, ok := controls["swapMargin"]; ok {
			hidden.SetSwapMargin(v)
		}
		fmt.Printf("epoch %d co-processed (swaps=%d margin=%.2f)\n",
			epoch, hidden.SwapsPerEpoch(), hidden.SwapMargin())
	}

	model.FitUnsupervised(train, params.UnsupervisedEpochs, hook)
	fmt.Printf("wrote %d VTI and %d PNG snapshots to insitu-out/\n",
		len(vti.Written), len(png.Written))
}
