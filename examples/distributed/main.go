// Distributed: BCPNN data-parallel training over the pluggable MPI-like
// fabric — the §II-B argument made runnable. Because learning is local,
// ranks train on disjoint shards and only the probability traces are
// allreduce-merged; accuracy is invariant in the rank count while per-rank
// work shrinks.
//
// The rank sweep runs twice: over the in-process chan fabric and over real
// loopback TCP sockets (rendezvous, binary frames — the cluster transport,
// DESIGN.md §10). For ranks as separate OS processes, use the launcher:
//
//	streambrain-dist -ranks 4 -transport tcp -epochs 5
package main

import (
	"fmt"
	"log"
	"time"

	"streambrain"
	"streambrain/internal/core"
	"streambrain/internal/mpi"
)

func main() {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 24000,
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := streambrain.DefaultParams()
	params.HCUs = 1
	params.MCUs = 300
	params.ReceptiveField = 0.40
	params.Seed = 5

	fmt.Printf("%-6s %-10s %-10s %-10s %s\n", "ranks", "transport", "accuracy", "AUC", "wall time")
	for _, transport := range []string{"chan", "tcp"} {
		for _, ranks := range []int{1, 2, 4, 8} {
			dt := core.NewDistributedTrainer(ranks, "parallel", 2,
				train.Hypercolumns, train.UnitsPerHC, train.Classes, params, train)
			w, err := mpi.NewWorldFor(transport, ranks, mpi.TCPOptions{})
			if err != nil {
				log.Fatal(err)
			}
			dt.World = w
			start := time.Now()
			net, err := dt.Train(5, 5)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			acc, auc := net.Evaluate(test)
			fmt.Printf("%-6d %-10s %-10.4f %-10.4f %.2fs\n",
				ranks, transport, acc, auc, elapsed.Seconds())
			w.Close()
		}
	}
}
