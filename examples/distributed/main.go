// Distributed: BCPNN data-parallel training over the MPI-like fabric —
// the §II-B argument made runnable. Because learning is local, ranks train
// on disjoint shards and only the probability traces are allreduce-merged;
// accuracy is invariant in the rank count while per-rank work shrinks.
package main

import (
	"fmt"
	"log"
	"time"

	"streambrain"
	"streambrain/internal/core"
)

func main() {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 24000,
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := streambrain.DefaultParams()
	params.HCUs = 1
	params.MCUs = 300
	params.ReceptiveField = 0.40
	params.Seed = 5

	fmt.Printf("%-6s %-10s %-10s %s\n", "ranks", "accuracy", "AUC", "wall time")
	for _, ranks := range []int{1, 2, 4, 8} {
		dt := core.NewDistributedTrainer(ranks, "parallel", 2,
			train.Hypercolumns, train.UnitsPerHC, train.Classes, params, train)
		start := time.Now()
		net := dt.Train(5, 5)
		elapsed := time.Since(start)
		acc, auc := net.Evaluate(test)
		fmt.Printf("%-6d %-10.4f %-10.4f %.2fs\n", ranks, acc, auc, elapsed.Seconds())
	}
}
