// Streaming: the continual-learning loop in one process — ingest a synthetic
// Higgs event stream, train the BCPNN incrementally in micro-batches, watch
// sliding-window accuracy/AUC, publish model snapshots into the serving
// registry while ingest continues, and finally score events over HTTP from a
// generation that did not exist at startup. cmd/streambrain-stream is the
// standalone equivalent.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"streambrain/internal/core"
	"streambrain/internal/higgs"
	"streambrain/internal/serve"
	"streambrain/internal/stream"
)

func main() {
	// 1. The stream: 20000 synthetic Higgs events replayed in order (a
	//    live deployment would feed a ChanSource from its event feed).
	ds := higgs.Generate(20000, 0.5, 42)
	src := stream.NewDatasetSource(ds, 0, 0)

	// 2. The serving side: a registry the pipeline publishes into, exposed
	//    over real HTTP while training runs.
	reg := serve.NewRegistry(2, serve.NamedBackendFactory("parallel", 0))
	srv := serve.NewServer(reg, serve.ServerConfig{}, "")
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (empty until the first snapshot)\n", base)

	// 3. The pipeline: warm up on the first 4000 events, then train
	//    micro-batches and publish a snapshot every 5000 events. The trace
	//    EMA runs faster than the batch default because a single streaming
	//    pass gives each event one update, not one per epoch.
	params := core.DefaultParams()
	params.MCUs = 300
	params.ReceptiveField = 0.40
	params.Taupdt = 0.03
	params.Seed = 42
	pipe, err := stream.New(stream.Config{
		Params:       params,
		HybridSGD:    true,
		Warmup:       4000,
		Window:       2000,
		PublishEvery: 5000,
	}, &stream.RegistryPublisher{Reg: reg})
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Run(context.Background(), src); err != nil {
		log.Fatal(err)
	}
	st := pipe.Stats()
	fmt.Printf("stream drained: %d events in %d micro-batches, window acc %.3f auc %.3f\n",
		st.Events, st.Batches, st.WindowAccuracy, st.WindowAUC)
	fmt.Printf("published %d snapshots (refits %d, drift signals %d)\n",
		st.Publishes, st.Refits, st.Drifts)

	// 4. The proof: the active generation was trained after startup, and it
	//    answers predictions for raw events.
	info := reg.Info()
	fmt.Printf("active bundle: %s (generation %d)\n", info.Source, info.Generation)

	raw := higgs.Generate(1, 1.0, 7).X.Row(0) // one signal-like event
	body, _ := json.Marshal(serve.PredictRequest{Events: [][]float64{raw}})
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	p := pr.Predictions[0]
	class := "background"
	if p.Class == 1 {
		class = "signal"
	}
	fmt.Printf("event scored by the streamed model: %s (signal probability %.3f)\n",
		class, p.SignalScore)
}
