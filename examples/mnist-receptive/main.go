// MNIST-receptive: the Fig. 1 demonstration — three HCUs trained
// unsupervised on handwritten digits learn *where to look*: their receptive
// fields migrate from random scatter to the informative image center and
// tile it with partial complementarity. The final fields are printed as
// ASCII heatmaps and saved as a PNG.
package main

import (
	"fmt"
	"log"

	"streambrain"
	"streambrain/internal/mnistgen"
	"streambrain/internal/viz"
)

func main() {
	// Procedural digits (or load the real MNIST IDX files via
	// mnistgen.ReadIDX when available).
	ds := mnistgen.Generate(3000, 11)
	enc := mnistgen.EncodeDualRail(ds, 0.5)

	params := streambrain.DefaultParams()
	params.HCUs = 3
	params.MCUs = 30
	params.ReceptiveField = 0.08 // ~63 of 784 pixels per HCU
	params.SwapsPerEpoch = 24
	params.Taupdt = 0.03
	params.UnsupervisedEpochs = 15
	params.Seed = 11
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel",
		Params:  params,
	}, enc.Hypercolumns, enc.UnitsPerHC, enc.Classes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training 3 HCUs unsupervised on digit images...")
	model.FitUnsupervised(enc, params.UnsupervisedEpochs)

	hidden := model.Network().Hidden
	var fields []viz.Field
	for h := 0; h < params.HCUs; h++ {
		f := viz.BoolField(fmt.Sprintf("hcu%d", h), mnistgen.Side, mnistgen.Side,
			hidden.ReceptiveField(h))
		fields = append(fields, f)
		fmt.Println(viz.ASCIIRender(f))
	}
	if err := viz.SavePNG("mnist_receptive_fields.png",
		viz.RenderMontage(fields, 3, 8)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mnist_receptive_fields.png")
}
