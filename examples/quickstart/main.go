// Quickstart: train a small BCPNN network on the (synthetic) Higgs Boson
// dataset and print test accuracy and AUC — the 60-second tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"streambrain"
)

func main() {
	// 1. Load data: synthesize events, balance, split, quantile one-hot
	//    encode (the paper's §V preprocessing). Pass CSVPath to use the
	//    real UCI HIGGS file instead.
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 20000,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train %d / test %d events, %d input hypercolumns x %d bins\n",
		train.Len(), test.Len(), train.Hypercolumns, train.UnitsPerHC)

	// 2. Build the model: one hidden hypercolumn of 500 minicolumns looking
	//    at 40% of the input features.
	params := streambrain.DefaultParams()
	params.HCUs = 1
	params.MCUs = 500
	params.ReceptiveField = 0.40
	params.Seed = 42
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel",
		Params:  params,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train (unsupervised feature learning, then the BCPNN classifier)
	//    and evaluate.
	model.Fit(train)
	acc, auc := model.Evaluate(test)
	fmt.Printf("test accuracy %.3f, AUC %.3f (trained in %.1fs)\n",
		acc, auc, model.TrainSeconds())

	// 4. Introspect: which input features does the HCU consider most
	//    informative? (This is BCPNN's data-science payoff — §V-B.)
	top := model.Network().Hidden.TopInputs(0)
	fmt.Printf("most informative features (by trace mutual information): %v\n", top[:5])
}
