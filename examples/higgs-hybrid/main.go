// Higgs-hybrid: the paper's best configuration — unsupervised BCPNN
// features with an SGD softmax readout ("combining unsupervised learning in
// StreamBrain with SGD reaches 69.15% performance ... AUC 76.4%", §V-A) —
// compared side by side with the pure-BCPNN readout on identical features.
package main

import (
	"fmt"
	"log"

	"streambrain"
)

func main() {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 30000,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, hybrid := range []bool{false, true} {
		params := streambrain.DefaultParams()
		params.HCUs = 1
		params.MCUs = 1000
		params.ReceptiveField = 0.30
		params.Seed = 7
		model, err := streambrain.NewModel(streambrain.Config{
			Backend:   "parallel",
			Params:    params,
			HybridSGD: hybrid,
		}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
		if err != nil {
			log.Fatal(err)
		}
		model.Fit(train)
		acc, auc := model.Evaluate(test)
		name := "pure BCPNN readout"
		if hybrid {
			name = "hybrid BCPNN+SGD readout"
		}
		fmt.Printf("%-26s accuracy %.4f  AUC %.4f  (%.1fs)\n",
			name, acc, auc, model.TrainSeconds())
	}
}
