// Textures: multi-class unsupervised feature learning on image textures —
// the STL-10/CIFAR-style use of StreamBrain (§III lists loaders for both;
// internal/imgdata reads the real binary files when present). A BCPNN
// network with several HCUs learns oriented-grating classes end to end,
// demonstrating the framework beyond binary Higgs classification.
package main

import (
	"fmt"
	"log"

	"streambrain"
	"streambrain/internal/imgdata"
	"streambrain/internal/metrics"
)

func main() {
	const side, classes = 16, 4
	train := imgdata.SyntheticTextures(2400, side, classes, 1)
	test := imgdata.SyntheticTextures(600, side, classes, 2)
	encTrain := imgdata.EncodeIntensity(train, 4)
	encTest := imgdata.EncodeIntensity(test, 4)
	fmt.Printf("textures: %d train / %d test, %d classes, %d hypercolumns x %d bins\n",
		encTrain.Len(), encTest.Len(), classes, encTrain.Hypercolumns, encTrain.UnitsPerHC)

	params := streambrain.DefaultParams()
	params.HCUs = 4
	params.MCUs = 24
	params.ReceptiveField = 0.25
	params.Taupdt = 0.03
	params.UnsupervisedEpochs = 10
	params.SupervisedEpochs = 10
	params.SwapsPerEpoch = 8
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel",
		Params:  params,
	}, encTrain.Hypercolumns, encTrain.UnitsPerHC, classes)
	if err != nil {
		log.Fatal(err)
	}
	model.Fit(encTrain)

	pred, _ := model.Predict(encTest)
	cm := metrics.NewConfusionMatrix(classes, encTest.Y, pred)
	fmt.Printf("test accuracy %.3f (chance %.3f)\n", cm.Accuracy(), 1.0/classes)
	fmt.Println("confusion matrix:")
	fmt.Println(cm)
}
