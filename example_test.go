package streambrain_test

// Testable examples for the public API surface: NewModel, Fit/Evaluate, and
// the SaveModel/LoadModel bundle round-trip. They run under go test (CI's
// "examples" step), so the documented workflow cannot rot. Outputs are
// structural facts and comfortable inequalities rather than exact floats —
// seeded runs are deterministic per platform, but Go's FMA fusing may vary
// the last bits across architectures.

import (
	"bytes"
	"fmt"

	"streambrain"
)

func ExampleNewModel() {
	// Geometry mirrors the §V encoding: 28 features × 10 quantile bins,
	// 2 classes (signal vs background).
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "naive",
		Params:  streambrain.DefaultParams(),
	}, 28, 10, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("hidden units:", model.Network().Hidden.Units())
	fmt.Println("train time so far:", model.TrainSeconds() == 0)
	// Output:
	// hidden units: 300
	// train time so far: true
}

func ExampleModel_Fit() {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 6000,
		Seed:   42,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	params := streambrain.DefaultParams()
	params.MCUs = 100
	params.ReceptiveField = 0.40
	params.Taupdt = 0.03
	params.Seed = 42
	model, err := streambrain.NewModel(streambrain.Config{Params: params},
		train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	model.Fit(train)
	acc, auc := model.Evaluate(test)
	fmt.Println("accuracy above chance:", acc > 0.55)
	fmt.Println("AUC above chance:", auc > 0.55)
	// Output:
	// accuracy above chance: true
	// AUC above chance: true
}

func ExampleSaveModel() {
	train, _, enc, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 2000,
		Seed:   7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	params := streambrain.DefaultParams()
	params.MCUs = 20
	params.UnsupervisedEpochs = 1
	params.SupervisedEpochs = 1
	params.Seed = 7
	model, err := streambrain.NewModel(streambrain.Config{Params: params},
		train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	model.Fit(train)

	// Model and fitted encoder travel together as one bundle: the unit of
	// deployment for the serving process.
	var bundle bytes.Buffer
	if err := streambrain.SaveModel(&bundle, model, enc); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("bundle written:", bundle.Len() > 0)
	// Output:
	// bundle written: true
}

func ExampleLoadModel() {
	train, test, enc, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 2000,
		Seed:   7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	params := streambrain.DefaultParams()
	params.MCUs = 20
	params.UnsupervisedEpochs = 1
	params.SupervisedEpochs = 1
	params.Seed = 7
	model, err := streambrain.NewModel(streambrain.Config{Params: params},
		train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	model.Fit(train)
	var bundle bytes.Buffer
	if err := streambrain.SaveModel(&bundle, model, enc); err != nil {
		fmt.Println("error:", err)
		return
	}

	// A fresh process reconstructs model + encoder from the bundle; the
	// backend is an execution choice, not model state.
	loaded, loadedEnc, err := streambrain.LoadModel(&bundle, streambrain.Config{Backend: "naive"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	origPred, _ := model.Predict(test)
	loadPred, _ := loaded.Predict(test)
	same := len(origPred) == len(loadPred)
	for i := range origPred {
		if origPred[i] != loadPred[i] {
			same = false
			break
		}
	}
	fmt.Println("encoder features:", loadedEnc.Features())
	fmt.Println("predictions match the original:", same)
	// Output:
	// encoder features: 28
	// predictions match the original: true
}
