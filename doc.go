// Package streambrain is a Go implementation of StreamBrain, the HPC
// framework for brain-inspired BCPNN learning, together with the full
// evaluation pipeline of "Higgs Boson Classification: Brain-inspired BCPNN
// Learning with StreamBrain" (Svedin et al., CLUSTER 2021).
//
// The public API mirrors the Keras-inspired workflow the paper describes
// (§III: construct the network, then call the training function):
//
//	train, test, enc := streambrain.LoadHiggs(streambrain.HiggsOptions{})
//	_ = enc
//	model, _ := streambrain.NewModel(streambrain.Config{
//		Backend: "parallel",
//		Params:  streambrain.DefaultParams(),
//	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
//	model.Fit(train)
//	acc, auc := model.Evaluate(test)
//
// Heavy lifting lives in internal packages: internal/core (the BCPNN
// model), internal/backend (naive / parallel / GPU-simulator kernels),
// internal/mpi (pluggable message-passing fabric: in-process channel ranks
// or TCP ranks as separate OS processes), internal/higgs and internal/mnistgen
// (dataset substrates), internal/viz (in-situ visualization), internal/serve
// (model bundles, the request micro-batcher, and the HTTP prediction
// service behind cmd/streambrain-serve), internal/stream (the online
// continual-learning pipeline behind cmd/streambrain-stream, which trains
// on a live event stream and publishes snapshots into the serving
// registry), and internal/experiments (the per-figure harnesses). See
// DESIGN.md for the complete inventory.
//
// A trained model plus its fitted encoder round-trips as one bundle —
// SaveModel / LoadModel — which is what cmd/streambrain-serve serves online:
//
//	_ = streambrain.SaveModel(f, model, enc)
//	// later, in the serving process:
//	model, enc, _ := streambrain.LoadModel(f, streambrain.Config{})
//
// The distributed entry point is cmd/streambrain-dist, the repository's
// mpirun (DESIGN.md §10): it forks N rank processes that train
// data-parallel BCPNN over the TCP fabric (core.DistributedTrainer /
// core.TrainRank over internal/mpi), shards the Higgs events by rank, and
// has rank 0 save the merged model as a bundle cmd/streambrain-serve loads
// unchanged.
//
// The compute stack is precision-parameterized (DESIGN.md §9): setting
// Params.Precision = streambrain.Float32 runs forward passes on the
// float32 kernel set (SIMD-accelerated on amd64) while the BCPNN traces
// stay float64, reproducing the paper's reduced-precision training
// scenario; bundles carry the precision and serve it end to end.
//
// Runnable Example functions for each of these entry points live in
// example_test.go and run under go test.
package streambrain
