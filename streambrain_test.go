package streambrain_test

import (
	"bytes"
	"testing"

	"streambrain"
	"streambrain/internal/core"
)

func TestLoadHiggsDefaults(t *testing.T) {
	train, test, enc, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 4000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if train.Hypercolumns != 28 || train.UnitsPerHC != 10 {
		t.Fatalf("geometry %dx%d", train.Hypercolumns, train.UnitsPerHC)
	}
	if enc.Bins != 10 || len(enc.Cuts) != 28 {
		t.Fatalf("encoder %d bins, %d features", enc.Bins, len(enc.Cuts))
	}
	if test.Len() == 0 || train.Len() == 0 {
		t.Fatal("empty split")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := streambrain.NewModel(streambrain.Config{Backend: "tpu"}, 4, 2, 2); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := streambrain.NewModel(streambrain.Config{}, 0, 2, 2); err == nil {
		t.Fatal("zero hypercolumns accepted")
	}
	if _, err := streambrain.NewModel(streambrain.Config{}, 4, 2, 1); err == nil {
		t.Fatal("single class accepted")
	}
	bad := streambrain.DefaultParams()
	bad.Taupdt = -1
	if _, err := streambrain.NewModel(streambrain.Config{Params: bad}, 4, 2, 2); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestBackendsListed(t *testing.T) {
	names := streambrain.Backends()
	want := map[string]bool{"naive": true, "parallel": true, "fused": true, "gpusim": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing backends %v", want)
	}
}

// TestEndToEndFacade trains a small model through the public API only.
func TestEndToEndFacade(t *testing.T) {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 16000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := streambrain.DefaultParams()
	params.HCUs = 1
	params.MCUs = 300
	params.ReceptiveField = 0.4
	params.UnsupervisedEpochs = 6
	params.SupervisedEpochs = 6
	params.Seed = 2
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel", Workers: 4, Params: params,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	model.Fit(train)
	acc, auc := model.Evaluate(test)
	if acc < 0.54 || auc < 0.56 {
		t.Fatalf("facade model failed to learn: acc %.3f auc %.3f", acc, auc)
	}
	pred, score := model.Predict(test)
	if len(pred) != test.Len() || len(score) != test.Len() {
		t.Fatal("prediction length mismatch")
	}
	if model.TrainSeconds() <= 0 {
		t.Fatal("train time not recorded")
	}
}

func TestHybridFacade(t *testing.T) {
	train, test, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 8000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := streambrain.DefaultParams()
	params.MCUs = 100
	params.UnsupervisedEpochs = 2
	params.SupervisedEpochs = 3
	params.Seed = 3
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel", Workers: 4, Params: params, HybridSGD: true,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	model.Fit(train)
	acc, _ := model.Evaluate(test)
	if acc < 0.5 {
		t.Fatalf("hybrid collapsed: %.3f", acc)
	}
}

// TestSaveLoadModelFacade round-trips a hybrid model plus its encoder
// through the public bundle API and checks the reloaded pair scores raw
// events identically.
func TestSaveLoadModelFacade(t *testing.T) {
	train, test, enc, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 6000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := streambrain.DefaultParams()
	params.MCUs = 50
	params.UnsupervisedEpochs = 2
	params.SupervisedEpochs = 2
	params.Seed = 5
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "parallel", Params: params, HybridSGD: true,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	model.Fit(train)

	var buf bytes.Buffer
	if err := streambrain.SaveModel(&buf, model, enc); err != nil {
		t.Fatal(err)
	}
	loaded, loadedEnc, err := streambrain.LoadModel(&buf, streambrain.Config{Backend: "naive"})
	if err != nil {
		t.Fatal(err)
	}
	if loadedEnc.Bins != enc.Bins || len(loadedEnc.Cuts) != len(enc.Cuts) {
		t.Fatalf("encoder changed: %d bins %d features", loadedEnc.Bins, len(loadedEnc.Cuts))
	}
	wantPred, wantScore := model.Predict(test)
	gotPred, gotScore := loaded.Predict(test)
	for i := range wantPred {
		if wantPred[i] != gotPred[i] {
			t.Fatalf("prediction changed at %d after bundle reload", i)
		}
		if d := wantScore[i] - gotScore[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("score changed at %d: %v vs %v", i, wantScore[i], gotScore[i])
		}
	}
}

func TestEpochHooksFire(t *testing.T) {
	train, _, _, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		Events: 3000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := streambrain.DefaultParams()
	params.MCUs = 20
	params.UnsupervisedEpochs = 3
	params.SupervisedEpochs = 0
	model, err := streambrain.NewModel(streambrain.Config{
		Backend: "naive", Params: params,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []int
	model.FitUnsupervised(train, 3, func(e int, l *core.HiddenLayer) {
		if l == nil || l.Units() != 20 {
			t.Errorf("hook got bad layer at epoch %d", e)
		}
		epochs = append(epochs, e)
	})
	if len(epochs) != 3 || epochs[0] != 0 || epochs[2] != 2 {
		t.Fatalf("hooks fired at %v, want [0 1 2]", epochs)
	}
}
