// Command streambrain-serve exposes a trained model bundle as an HTTP JSON
// prediction service with request micro-batching:
//
//	streambrain -events 40000 -hybrid -save-bundle model.bundle
//	streambrain-serve -bundle model.bundle -addr :8080
//	curl -s localhost:8080/v1/predict -d '{"events": [[...28 raw features...]]}'
//
// Concurrent requests are coalesced into single backend-sized forward passes
// (up to -max-batch events per call, waiting at most -max-wait for company),
// the same batching that gives StreamBrain its training throughput.
// GET /healthz reports liveness, GET /stats reports request counts, batch
// amortization, and latency percentiles, and POST /v1/reload atomically
// hot-swaps the bundle from disk without dropping in-flight requests.
package main

import (
	"flag"
	"log"
	"net/http"
	"runtime"
	"time"

	"streambrain/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambrain-serve: ")

	var (
		bundlePath  = flag.String("bundle", "", "path to the model bundle (required)")
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		backendName = flag.String("backend", "parallel", "compute backend: naive | parallel | gpusim")
		workers     = flag.Int("workers", 0, "per-replica backend worker-team size (0 = all cores)")
		replicas    = flag.Int("replicas", defaultReplicas(), "model replicas = concurrent batch executors")
		maxBatch    = flag.Int("max-batch", 64, "max coalesced events per backend call")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max time a request waits to be batched")
	)
	flag.Parse()
	if *bundlePath == "" {
		log.Fatal("-bundle is required (train one with: streambrain -save-bundle model.bundle)")
	}

	reg := serve.NewRegistry(*replicas, serve.NamedBackendFactory(*backendName, *workers))
	if err := reg.LoadFile(*bundlePath); err != nil {
		log.Fatal(err)
	}
	info := reg.Info()
	log.Printf("loaded %s: %d features -> %d classes (saved from %q backend), %d replicas",
		info.Source, info.Features, info.Classes, info.SavedBackend, info.Replicas)

	srv := serve.NewServer(reg, serve.ServerConfig{
		Batcher: serve.BatcherConfig{MaxBatch: *maxBatch, MaxWait: *maxWait},
	}, *bundlePath)
	defer srv.Close()

	log.Printf("serving on %s (max-batch %d, max-wait %s)", *addr, *maxBatch, *maxWait)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}

// defaultReplicas leaves headroom for the HTTP runtime: half the cores, and
// each replica's backend still parallelizes internally.
func defaultReplicas() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	return n
}
