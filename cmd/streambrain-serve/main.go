// Command streambrain-serve exposes a trained model bundle as an HTTP JSON
// prediction service with request micro-batching:
//
//	streambrain -events 40000 -hybrid -save-bundle model.bundle
//	streambrain-serve -bundle model.bundle -addr :8080
//	curl -s localhost:8080/v1/predict -d '{"events": [[...28 raw features...]]}'
//
// Concurrent requests are coalesced into single backend-sized forward passes
// (up to -max-batch events per call, waiting at most -max-wait for company),
// the same batching that gives StreamBrain its training throughput.
// POST /v1/predict also speaks the length-prefixed binary wire protocol
// (DESIGN.md §12): send a frame with
// Content-Type: application/x-streambrain-frame and the response comes back
// as a binary frame over a pooled, allocation-free hot path — the codec
// cmd/streambrain-loadtest drives with -wire binary.
// GET /healthz reports liveness, GET /stats reports request counts, batch
// amortization, and latency percentiles, GET /metrics serves the same
// counters as Prometheus text exposition, and POST /v1/reload atomically
// hot-swaps the bundle from disk without dropping in-flight requests.
//
// Observability (DESIGN.md §11): sampled request traces are downloadable at
// GET /debug/traces (load the file in chrome://tracing), -pprof mounts
// net/http/pprof under /debug/pprof/, and -profile cpu|heap|mutex records a
// whole-run profile written to -profile-out on SIGTERM/interrupt.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"streambrain/internal/fleet"
	"streambrain/internal/obs"
	"streambrain/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambrain-serve: ")

	var (
		bundlePath  = flag.String("bundle", "", "path to the model bundle (required)")
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		backendName = flag.String("backend", "parallel", "compute backend: naive | parallel | fused | gpusim")
		workers     = flag.Int("workers", 0, "per-replica backend worker-team size (0 = all cores)")
		replicas    = flag.Int("replicas", defaultReplicas(), "model replicas = concurrent batch executors")
		maxBatch    = flag.Int("max-batch", 64, "max coalesced events per backend call")
		maxWait     = flag.Duration("max-wait", 2*time.Millisecond, "max time a request waits to be batched")
		traceEvery  = flag.Int("trace-every", 0, "sample every Nth request into /debug/traces (0 = default rate, <0 disables)")
		joinAddr    = flag.String("join", "", "announce this replica to a streambrain-router fleet listener at host:port")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		profileKind = flag.String("profile", "", "whole-run profile written at shutdown: "+obs.ProfileKinds)
		profileOut  = flag.String("profile-out", "", "profile output path (default streambrain-serve.<kind>.pprof)")
	)
	flag.Parse()
	if *bundlePath == "" {
		log.Fatal("-bundle is required (train one with: streambrain -save-bundle model.bundle)")
	}

	prof, err := obs.StartProfile(*profileKind, profilePath(*profileOut, "streambrain-serve", *profileKind))
	if err != nil {
		log.Fatal(err)
	}

	reg := serve.NewRegistry(*replicas, serve.NamedBackendFactory(*backendName, *workers))
	if err := reg.LoadFile(*bundlePath); err != nil {
		log.Fatal(err)
	}
	info := reg.Info()
	log.Printf("loaded %s: %d features -> %d classes (saved from %q backend), %d replicas",
		info.Source, info.Features, info.Classes, info.SavedBackend, info.Replicas)

	srv := serve.NewServer(reg, serve.ServerConfig{
		Batcher:    serve.BatcherConfig{MaxBatch: *maxBatch, MaxWait: *maxWait},
		Obs:        obs.NewRegistry(),
		TraceEvery: *traceEvery,
	}, *bundlePath)

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		obs.AttachPprof(mux)
		log.Printf("pprof mounted at /debug/pprof/")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	// Listen explicitly rather than ListenAndServe so -addr :0 works: the
	// kernel-assigned port is logged (scripts parse the "serving on" line)
	// and announced to the fleet.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	go func() {
		log.Printf("serving on %s (max-batch %d, max-wait %s)", ln.Addr(), *maxBatch, *maxWait)
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	if *joinAddr != "" {
		table, err := fleet.Announce(*joinAddr, ln)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("joined fleet at %s (%d members)", *joinAddr, len(table))
	}
	<-ctx.Done()

	// Graceful teardown: stop accepting, drain in-flight requests and the
	// batcher, then write the run profile.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
	if prof != nil {
		log.Printf("wrote %s profile to %s", *profileKind, prof.Path())
	}
}

// profilePath resolves -profile-out, defaulting to <cmd>.<kind>.pprof.
func profilePath(out, cmd, kind string) string {
	if out != "" || kind == "" {
		return out
	}
	return cmd + "." + kind + ".pprof"
}

// defaultReplicas leaves headroom for the HTTP runtime: half the cores, and
// each replica's backend still parallelizes internally.
func defaultReplicas() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	return n
}
