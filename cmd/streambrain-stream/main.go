// Command streambrain-stream runs the online continual-learning pipeline:
// it ingests a stream of raw Higgs events (replayed from a CSV file at a
// configurable rate, or synthesized on the fly), trains the BCPNN
// incrementally in micro-batches, tracks sliding-window accuracy/AUC with a
// drift signal, and periodically publishes fresh model snapshots — into an
// in-process HTTP prediction service (-addr), a bundle file (-save-bundle),
// or both. One process learns and serves concurrently:
//
//	streambrain-stream -events 100000 -rate 5000 -addr :8080
//	curl -s localhost:8080/healthz          # generation advances as it learns
//	curl -s localhost:8080/v1/predict -d '{"events": [[...28 raw features...]]}'
//
// With -csv the real UCI HIGGS file is replayed instead of the synthetic
// generator; -loop replays past one pass for long soak runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streambrain/internal/core"
	"streambrain/internal/higgs"
	"streambrain/internal/obs"
	"streambrain/internal/serve"
	"streambrain/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambrain-stream: ")

	var (
		csvPath = flag.String("csv", "", "replay a UCI HIGGS CSV instead of synthesizing events")
		events  = flag.Int("events", 100000, "synthetic event count (ignored with -csv)")
		loop    = flag.Int("loop", 0, "total events to emit, looping over the input (0 = one pass)")
		rate    = flag.Float64("rate", 0, "ingest pacing in events/s (0 = as fast as possible)")
		seed    = flag.Int64("seed", 1, "synthetic generation seed")

		backendName = flag.String("backend", "parallel", "compute backend: naive | parallel | fused | gpusim")
		workers     = flag.Int("workers", 0, "backend worker-team size (0 = all cores)")
		mcus        = flag.Int("mcus", 300, "minicolumn units per HCU")
		hcus        = flag.Int("hcus", 1, "hidden hypercolumn units")
		rf          = flag.Float64("rf", 0.30, "receptive-field fraction")
		bins        = flag.Int("bins", 10, "quantile-encoding bins")

		warmup       = flag.Int("warmup", 2048, "events buffered before the first model is fitted")
		batch        = flag.Int("batch", 128, "training micro-batch size")
		window       = flag.Int("window", 2048, "sliding metric window (events)")
		publishEvery = flag.Int("publish-every", 8192, "events between bundle snapshots (<0 disables periodic publishes)")
		refitEvery   = flag.Int("refit-every", 0, "events between encoder refits (0 = refit only on drift)")
		driftDrop    = flag.Float64("drift-drop", 0.10, "windowed-accuracy drop that signals drift")

		addr       = flag.String("addr", "", "serve predictions over HTTP at this address while training (empty = train-only)")
		replicas   = flag.Int("replicas", 2, "serving model replicas when -addr is set")
		saveBundle = flag.String("save-bundle", "", "also rewrite this bundle file on every snapshot")
		statsEvery = flag.Duration("stats-every", 5*time.Second, "progress log interval")

		traceEvery  = flag.Int("trace-every", 64, "sample every Nth ingest step into /debug/traces (<0 disables)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (needs -addr)")
		profileKind = flag.String("profile", "", "whole-run profile written at shutdown: "+obs.ProfileKinds)
		profileOut  = flag.String("profile-out", "", "profile output path (default streambrain-stream.<kind>.pprof)")
	)
	flag.Parse()

	prof, err := obs.StartProfile(*profileKind, profilePath(*profileOut, "streambrain-stream", *profileKind))
	if err != nil {
		log.Fatal(err)
	}

	// The input: a real CSV replay or the synthetic physics generator,
	// paced to -rate.
	ds, err := higgs.Load(*csvPath, 0, *events, *seed)
	if err != nil {
		log.Fatal(err)
	}
	src := stream.NewDatasetSource(ds, *loop, *rate)
	emitting := ds.Len()
	if *loop > 0 {
		emitting = *loop
	}
	log.Printf("source: %d events loaded, emitting %d at %s",
		ds.Len(), emitting, rateString(*rate))

	// The outputs: an in-process serving registry and/or a bundle file.
	var pubs stream.MultiPublisher
	var reg *serve.Registry
	if *addr != "" {
		reg = serve.NewRegistry(*replicas, serve.NamedBackendFactory(*backendName, *workers))
		pubs = append(pubs, &stream.RegistryPublisher{Reg: reg})
	}
	if *saveBundle != "" {
		pubs = append(pubs, stream.FilePublisher{Path: *saveBundle})
	}
	var pub stream.Publisher
	if len(pubs) > 0 {
		pub = pubs
	}

	// One telemetry registry and one trace ring cover the whole process:
	// the pipeline's ingest metrics/spans and (with -addr) the co-located
	// prediction server's land side by side on /metrics and /debug/traces.
	obsReg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceEvery >= 0 {
		every := *traceEvery
		if every == 0 {
			every = 64
		}
		tracer = obs.NewTracer(every, 64)
	}

	params := core.DefaultParams()
	params.MCUs = *mcus
	params.HCUs = *hcus
	params.ReceptiveField = *rf
	params.BatchSize = *batch
	params.Seed = *seed
	pipe, err := stream.New(stream.Config{
		Backend:      *backendName,
		Workers:      *workers,
		Params:       params,
		Bins:         *bins,
		Warmup:       *warmup,
		BatchSize:    *batch,
		Window:       *window,
		DriftDrop:    *driftDrop,
		PublishEvery: *publishEvery,
		RefitEvery:   *refitEvery,
		Obs:          obsReg,
		Tracer:       tracer,
	}, pub)
	if err != nil {
		log.Fatal(err)
	}

	if *addr != "" {
		srv := serve.NewServer(reg, serve.ServerConfig{Obs: obsReg, Tracer: tracer}, "")
		defer srv.Close()
		mux := http.NewServeMux()
		mux.Handle("/", srv.Handler())
		if *pprofOn {
			obs.AttachPprof(mux)
			log.Printf("pprof mounted at /debug/pprof/")
		}
		go func() {
			log.Printf("serving on %s while training", *addr)
			if err := http.ListenAndServe(*addr, mux); err != nil {
				log.Fatal(err)
			}
		}()
	} else if *pprofOn {
		log.Printf("-pprof has no effect without -addr")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go progress(ctx, pipe, *statsEvery)

	start := time.Now()
	if err := pipe.Run(ctx, src); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	logStats(pipe.Stats(), time.Since(start))
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
	if prof != nil {
		log.Printf("wrote %s profile to %s", *profileKind, prof.Path())
	}
}

// profilePath resolves -profile-out, defaulting to <cmd>.<kind>.pprof.
func profilePath(out, cmd, kind string) string {
	if out != "" || kind == "" {
		return out
	}
	return cmd + "." + kind + ".pprof"
}

// progress logs one status line per interval until ctx ends.
func progress(ctx context.Context, p *stream.Pipeline, every time.Duration) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	start := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			logStats(p.Stats(), time.Since(start))
		}
	}
}

func logStats(s stream.Stats, elapsed time.Duration) {
	// Window metrics are only meaningful once the prequential window has
	// filled (Stats gates them; see stream.Stats.WindowReady).
	metrics := "acc    n/a  auc    n/a"
	if s.WindowReady {
		metrics = fmt.Sprintf("acc %.3f  auc %.3f", s.WindowAccuracy, s.WindowAUC)
	}
	log.Printf("%8.1fs  %9d events  %6d batches  %s  publishes %d  refits %d  drifts %d  (%.0f events/s)",
		elapsed.Seconds(), s.Events, s.Batches, metrics,
		s.Publishes, s.Refits, s.Drifts, float64(s.Events)/elapsed.Seconds())
}

func rateString(rate float64) string {
	if rate <= 0 {
		return "full speed"
	}
	return time.Duration(float64(time.Second)/rate).String() + "/event"
}
