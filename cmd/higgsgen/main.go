// Command higgsgen materializes a synthetic HIGGS dataset in the UCI CSV
// format (label, 21 low-level features, 7 high-level invariant masses).
// It is the offline stand-in for downloading the real 2 GB archive:
//
//	higgsgen -n 100000 -o higgs.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streambrain/internal/higgs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("higgsgen: ")

	var (
		n      = flag.Int("n", 100000, "number of events")
		out    = flag.String("o", "higgs.csv", "output path (- for stdout)")
		frac   = flag.Float64("signal", 0.5, "signal fraction")
		seed   = flag.Int64("seed", 1, "random seed")
		header = flag.Bool("describe", false, "print the feature schema and exit")
	)
	flag.Parse()

	if *header {
		fmt.Println("column 0: label (1 = signal s, 0 = background b)")
		for i, name := range higgs.FeatureNames {
			kind := "low-level"
			if i >= higgs.NumLowLevel {
				kind = "high-level"
			}
			fmt.Printf("column %2d: %-26s (%s)\n", i+1, name, kind)
		}
		return
	}

	ds := higgs.Generate(*n, *frac, *seed)
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := higgs.WriteCSV(w, ds); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		fmt.Printf("wrote %d events to %s\n", *n, *out)
	}
}
