// Command streambrain trains and evaluates a BCPNN network on the Higgs
// Boson classification task, reproducing the paper's workflow end to end:
//
//	streambrain -events 40000 -hcus 1 -mcus 3000 -rf 0.30 -hybrid
//
// With -higgs-csv pointing at the real UCI HIGGS file, the genuine dataset
// is used instead of the synthetic generator.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streambrain"
	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambrain: ")

	var (
		backendName = flag.String("backend", "parallel", "compute backend: naive | parallel | fused | gpusim")
		workers     = flag.Int("workers", 0, "backend worker-team size (0 = all cores)")
		csvPath     = flag.String("higgs-csv", "", "path to the real UCI HIGGS CSV (empty = synthetic)")
		events      = flag.Int("events", 40000, "synthetic event count")
		bins        = flag.Int("bins", 10, "quantile one-hot bins per feature")
		hcus        = flag.Int("hcus", 1, "hidden hypercolumn units")
		mcus        = flag.Int("mcus", 3000, "minicolumn units per HCU")
		rf          = flag.Float64("rf", 0.30, "receptive-field fraction [0,1]")
		sparsity    = flag.Float64("sparsity", 0, "target structural sparsity [0,1): anneal each HCU's receptive field down to round((1-s)*Fi) active inputs with the prune/regrow schedule (0 = keep -rf fixed)")
		sparseC     = flag.Bool("sparse-compute", false, "run the block-sparse kernel path over the pruned mask (silent blocks skipped and frozen); default recomputes every block dense-masked")
		unsup       = flag.Int("unsup-epochs", 6, "unsupervised epochs")
		sup         = flag.Int("sup-epochs", 6, "supervised epochs")
		taupdt      = flag.Float64("taupdt", 0.012, "trace learning rate")
		batch       = flag.Int("batch", 128, "mini-batch size")
		hybrid      = flag.Bool("hybrid", false, "use the BCPNN+SGD hybrid readout")
		precision   = flag.String("precision", "float64", "compute precision: float64 | float32 (forward passes at half width, traces stay float64)")
		seed        = flag.Int64("seed", 1, "random seed")
		saveModel   = flag.String("save", "", "write the trained model state to this path")
		saveBundle  = flag.String("save-bundle", "", "write a serving bundle (model + encoder) to this path")
		loadModel   = flag.String("load", "", "load a model state instead of training")
	)
	flag.Parse()

	params := streambrain.DefaultParams()
	params.HCUs = *hcus
	params.MCUs = *mcus
	params.ReceptiveField = *rf
	params.UnsupervisedEpochs = *unsup
	params.SupervisedEpochs = *sup
	params.Taupdt = *taupdt
	params.BatchSize = *batch
	params.Seed = *seed
	params.Precision = streambrain.Precision(*precision)
	params.TargetSparsity = *sparsity
	params.SparseCompute = *sparseC
	if err := params.Validate(); err != nil {
		log.Fatal(err)
	}

	train, test, enc, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		CSVPath: *csvPath,
		Events:  *events,
		Bins:    *bins,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test events, %d hypercolumns x %d bins\n",
		train.Len(), test.Len(), train.Hypercolumns, train.UnitsPerHC)

	be, err := backend.New(*backendName, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			log.Fatal(err)
		}
		net, err := core.Load(f, be)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		acc, auc := net.Evaluate(test)
		fmt.Printf("loaded %s: test accuracy %.4f, AUC %.4f\n", *loadModel, acc, auc)
		return
	}

	model, err := streambrain.NewModel(streambrain.Config{
		Backend:   *backendName,
		Workers:   *workers,
		Params:    params,
		HybridSGD: *hybrid,
	}, train.Hypercolumns, train.UnitsPerHC, train.Classes)
	if err != nil {
		log.Fatal(err)
	}

	readout := "BCPNN"
	if *hybrid {
		readout = "BCPNN+SGD"
	}
	fmt.Printf("training %d HCUs x %d MCUs, RF %.0f%%, readout %s, backend %s\n",
		*hcus, *mcus, *rf*100, readout, *backendName)
	if *sparsity > 0 {
		regime := "dense-masked"
		if *sparseC {
			regime = "block-sparse"
		}
		fmt.Printf("structural sparsity: prune/regrow toward %.0f%% silent inputs per HCU, %s compute\n",
			*sparsity*100, regime)
	}
	model.Fit(train)
	acc, auc := model.Evaluate(test)
	fmt.Printf("test accuracy %.4f, AUC %.4f (train time %.1fs)\n",
		acc, auc, model.TrainSeconds())
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Network().Save(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("saved model state to %s\n", *saveModel)
	}
	if *saveBundle != "" {
		if err := serve.SaveBundleFile(*saveBundle, model.Network(), enc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved serving bundle to %s (serve with: streambrain-serve -bundle %s)\n",
			*saveBundle, *saveBundle)
	}
	if acc < 0.5 {
		os.Exit(1)
	}
}
