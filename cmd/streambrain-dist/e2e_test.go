package main

// The end-to-end contract of the distributed path, as a test: build the
// launcher, train 2 real OS-process TCP ranks on a tiny budget, load the
// bundle rank 0 merged, and answer a /v1/predict request from it — the
// whole cluster story (DESIGN.md §10) in one subprocess round-trip.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"streambrain/internal/higgs"
	"streambrain/internal/serve"
)

func TestDistTrainBundleServeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs rank subprocesses")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "streambrain-dist")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	bundle := filepath.Join(dir, "model.bundle")
	run := exec.Command(bin,
		"-ranks", "2", "-transport", "tcp",
		"-events", "2000", "-mcus", "20", "-epochs", "1", "-batch", "64",
		"-backend", "naive", "-workers", "1",
		"-save-bundle", bundle)
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("streambrain-dist: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "world up: 2 tcp ranks") {
		t.Fatalf("launcher output missing world banner:\n%s", out)
	}

	// The bundle must load through the serving registry — the exact path
	// streambrain-serve -bundle takes.
	reg := serve.NewRegistry(1, serve.NamedBackendFactory("naive", 1))
	if err := reg.LoadFile(bundle); err != nil {
		t.Fatalf("bundle from distributed training does not load: %v", err)
	}
	srv := serve.NewServer(reg, serve.ServerConfig{}, "")
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ds := higgs.Generate(4, 0.5, 3)
	body, _ := json.Marshal(map[string]any{
		"events": [][]float64{ds.X.Row(0), ds.X.Row(1)},
	})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/predict status %d", resp.StatusCode)
	}
	var got struct {
		Predictions []struct {
			Class       int     `json:"class"`
			SignalScore float64 `json:"signal_score"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Predictions) != 2 {
		t.Fatalf("expected 2 predictions, got %d", len(got.Predictions))
	}
	for i, p := range got.Predictions {
		if p.Class < 0 || p.Class > 1 || p.SignalScore < 0 || p.SignalScore > 1 {
			t.Fatalf("prediction %d implausible: %+v", i, p)
		}
	}
}
