// Command streambrain-dist is the mpirun of the repository (DESIGN.md §10):
// it launches BCPNN data-parallel training across N ranks and merges the
// result into one serve-loadable bundle.
//
//	streambrain-dist -ranks 4 -transport tcp -epochs 5 -save-bundle model.bundle
//	streambrain-serve -bundle model.bundle
//
// With -transport tcp (the default) every rank is a separate OS process:
// the launcher re-executes itself once per rank, rank 0 binds the
// rendezvous listener and publishes its address through a temp file, the
// other ranks join it, and the mesh of length-prefixed binary frames
// carries the trace allreduces. With -transport chan the ranks are
// goroutines inside this process — same collectives, zero-copy-distance
// links — which is the right tool for quick local sweeps.
//
// Every rank process loads the identically-seeded dataset, takes its
// round-robin shard, and trains with the rank-rescaled trace rate
// (core.DistributedParams), so the merged model is invariant in the rank
// count (experiment E9 asserts this). Rank 0 calibrates the decision
// threshold, evaluates the held-out split, and writes the bundle.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"streambrain"
	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/mpi"
	"streambrain/internal/obs"
	"streambrain/internal/serve"
)

// opts carries every flag a rank subprocess must agree on with the
// launcher; toArgs re-serializes them for the child command lines.
type opts struct {
	ranks      int
	transport  string
	backend    string
	workers    int
	csvPath    string
	events     int
	bins       int
	mcus       int
	hcus       int
	rf         float64
	taupdt     float64
	batch      int
	unsup      int
	sup        int
	mergeEvery int
	seed       int64
	saveBundle string

	obsAddr     string
	profileKind string
	profileOut  string
}

func (o opts) toArgs() []string {
	return []string{
		"-ranks", strconv.Itoa(o.ranks),
		"-transport", o.transport,
		"-backend", o.backend,
		"-workers", strconv.Itoa(o.workers),
		"-higgs-csv", o.csvPath,
		"-events", strconv.Itoa(o.events),
		"-bins", strconv.Itoa(o.bins),
		"-mcus", strconv.Itoa(o.mcus),
		"-hcus", strconv.Itoa(o.hcus),
		"-rf", strconv.FormatFloat(o.rf, 'g', -1, 64),
		"-taupdt", strconv.FormatFloat(o.taupdt, 'g', -1, 64),
		"-batch", strconv.Itoa(o.batch),
		"-unsup-epochs", strconv.Itoa(o.unsup),
		"-sup-epochs", strconv.Itoa(o.sup),
		"-merge-every", strconv.Itoa(o.mergeEvery),
		"-seed", strconv.FormatInt(o.seed, 10),
		"-save-bundle", o.saveBundle,
		"-obs-addr", o.obsAddr,
		"-profile", o.profileKind,
		"-profile-out", o.profileOut,
	}
}

func (o opts) params() streambrain.Params {
	p := streambrain.DefaultParams()
	p.HCUs = o.hcus
	p.MCUs = o.mcus
	p.ReceptiveField = o.rf
	p.Taupdt = o.taupdt
	p.BatchSize = o.batch
	p.UnsupervisedEpochs = o.unsup
	p.SupervisedEpochs = o.sup
	p.Seed = o.seed
	return p
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambrain-dist: ")

	var o opts
	flag.IntVar(&o.ranks, "ranks", 2, "number of ranks (OS processes with -transport tcp)")
	flag.StringVar(&o.transport, "transport", "tcp", "fabric: chan (goroutine ranks) | tcp (process ranks)")
	flag.StringVar(&o.backend, "backend", "parallel", "compute backend per rank: naive | parallel | fused | gpusim")
	flag.IntVar(&o.workers, "workers", 0, "backend worker-team size per rank (0 = all cores)")
	flag.StringVar(&o.csvPath, "higgs-csv", "", "path to the real UCI HIGGS CSV (empty = synthetic)")
	flag.IntVar(&o.events, "events", 24000, "synthetic event count")
	flag.IntVar(&o.bins, "bins", 10, "quantile one-hot bins per feature")
	flag.IntVar(&o.mcus, "mcus", 300, "minicolumn units per HCU")
	flag.IntVar(&o.hcus, "hcus", 1, "hidden hypercolumn units")
	flag.Float64Var(&o.rf, "rf", 0.40, "receptive-field fraction [0,1]")
	flag.Float64Var(&o.taupdt, "taupdt", 0.012, "trace learning rate (rescaled per rank count)")
	flag.IntVar(&o.batch, "batch", 128, "mini-batch size per rank")
	epochs := flag.Int("epochs", 5, "epochs for both phases (overridden by -unsup-epochs/-sup-epochs)")
	flag.IntVar(&o.unsup, "unsup-epochs", -1, "unsupervised epochs (-1 = -epochs)")
	flag.IntVar(&o.sup, "sup-epochs", -1, "supervised epochs (-1 = -epochs)")
	flag.IntVar(&o.mergeEvery, "merge-every", 1, "local batches between trace allreduces")
	flag.Int64Var(&o.seed, "seed", 1, "random seed (must match across ranks; the launcher forwards it)")
	flag.StringVar(&o.saveBundle, "save-bundle", "", "rank 0 writes the merged serving bundle here")
	flag.StringVar(&o.obsAddr, "obs-addr", "", "per-rank /metrics + pprof listen address; an explicit port is offset by the rank (tcp transport only)")
	flag.StringVar(&o.profileKind, "profile", "", "per-rank whole-run profile written at exit: "+obs.ProfileKinds)
	flag.StringVar(&o.profileOut, "profile-out", "", "profile output path stem (default streambrain-dist.<kind>.pprof; ranks append .rank<N>)")
	rank := flag.Int("rank", -1, "internal: this process's rank (set by the launcher)")
	rendezvous := flag.String("rendezvous", "", "internal: rank-0 rendezvous address to join")
	rendezvousFile := flag.String("rendezvous-file", "", "internal: rank 0 writes its rendezvous address here")
	flag.Parse()

	if o.unsup < 0 {
		o.unsup = *epochs
	}
	if o.sup < 0 {
		o.sup = *epochs
	}
	if o.ranks < 1 {
		log.Fatal("-ranks must be >= 1")
	}
	switch o.transport {
	case "chan", "tcp":
	default:
		log.Fatalf("unknown -transport %q (want chan or tcp)", o.transport)
	}

	switch {
	case *rank >= 0:
		if err := runRank(o, *rank, *rendezvous, *rendezvousFile); err != nil {
			log.Fatalf("rank %d: %v", *rank, err)
		}
	case o.transport == "chan":
		if err := runChan(o); err != nil {
			log.Fatal(err)
		}
	default:
		if err := launch(o); err != nil {
			log.Fatal(err)
		}
	}
}

// prepare loads the dataset and derives this world's shared model
// parameters. Deterministic in the flags, so every rank process computes
// identical splits and identically-seeded replicas.
func prepare(o opts) (train, test *data.Encoded, enc *data.Encoder, p streambrain.Params, err error) {
	tr, te, e, err := streambrain.LoadHiggs(streambrain.HiggsOptions{
		CSVPath: o.csvPath,
		Events:  o.events,
		Bins:    o.bins,
		Seed:    o.seed,
	})
	if err != nil {
		return nil, nil, nil, p, err
	}
	return tr, te, e, o.params(), nil
}

// runChan trains all ranks as goroutines in this process — the in-process
// fabric, no forking.
func runChan(o opts) error {
	if o.obsAddr != "" {
		log.Printf("-obs-addr is ignored with -transport chan (goroutine ranks share one process)")
	}
	prof, err := obs.StartProfile(o.profileKind,
		profilePath(o.profileOut, "streambrain-dist", o.profileKind))
	if err != nil {
		return err
	}
	defer stopProfile(prof, o.profileKind)
	train, test, enc, p, err := prepare(o)
	if err != nil {
		return err
	}
	fmt.Printf("training %d chan ranks: %d events each, %d MCUs, epochs %d+%d\n",
		o.ranks, (train.Len()+o.ranks-1)/o.ranks, o.mcus, o.unsup, o.sup)
	dt := core.NewDistributedTrainer(o.ranks, o.backend, o.workers,
		train.Hypercolumns, train.UnitsPerHC, train.Classes, p, train)
	dt.MergeEvery = o.mergeEvery
	start := time.Now()
	net, err := dt.Train(o.unsup, o.sup)
	if err != nil {
		return err
	}
	return report(o, net, test, enc, time.Since(start))
}

// runRank is one TCP rank process: rendezvous (rank 0) or join, then the
// shared SPMD training body.
func runRank(o opts, rank int, rendezvousAddr, rendezvousFile string) error {
	if o.transport != "tcp" {
		return fmt.Errorf("-rank is only meaningful with -transport tcp")
	}
	if rank >= o.ranks {
		return fmt.Errorf("rank %d outside world of %d", rank, o.ranks)
	}
	if o.profileKind != "" {
		path := profilePath(o.profileOut, "streambrain-dist", o.profileKind)
		prof, err := obs.StartProfile(o.profileKind, path+".rank"+strconv.Itoa(rank))
		if err != nil {
			return err
		}
		defer stopProfile(prof, o.profileKind)
	}
	topt := mpi.TCPOptions{RendezvousTimeout: 2 * time.Minute}

	var comm *mpi.Comm
	var err error
	if rank == 0 {
		addr := rendezvousAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		rv, rvErr := mpi.NewRendezvous(addr)
		if rvErr != nil {
			return rvErr
		}
		if rendezvousFile != "" {
			// Atomic publish: the launcher polls for the final name, so it
			// can never read a half-written address.
			tmp := rendezvousFile + ".tmp"
			if err := os.WriteFile(tmp, []byte(rv.Addr()), 0o644); err != nil {
				return err
			}
			if err := os.Rename(tmp, rendezvousFile); err != nil {
				return err
			}
		}
		// Data prep happens before Accept so the rendezvous wait overlaps
		// every rank's (identical) preprocessing instead of serializing it.
		train, test, enc, p, err := prepare(o)
		if err != nil {
			return err
		}
		comm, err = rv.Accept(o.ranks, topt)
		if err != nil {
			return err
		}
		defer comm.Close()
		return trainRankProcess(o, comm, train, test, enc, p)
	}

	train, test, enc, p, err := prepare(o)
	if err != nil {
		return err
	}
	comm, err = mpi.JoinTCP(rendezvousAddr, rank, o.ranks, topt)
	if err != nil {
		return err
	}
	defer comm.Close()
	return trainRankProcess(o, comm, train, test, enc, p)
}

// trainRankProcess is the SPMD body every TCP rank runs once its Comm is up.
func trainRankProcess(o opts, c *mpi.Comm, train, test *data.Encoded,
	enc *data.Encoder, p streambrain.Params) error {
	if o.obsAddr != "" {
		if err := startRankObs(o.obsAddr, c); err != nil {
			return err
		}
	}
	shard := train.Subset(core.ShardRows(train.Len(), o.ranks, c.Rank()))
	be, err := backend.New(o.backend, o.workers)
	if err != nil {
		return err
	}
	net := core.NewNetwork(be, train.Hypercolumns, train.UnitsPerHC, train.Classes,
		core.DistributedParams(p, o.ranks))
	if c.Rank() == 0 {
		fmt.Printf("world up: %d tcp ranks, shard %d events, %d MCUs, epochs %d+%d\n",
			c.Size(), shard.Len(), o.mcus, o.unsup, o.sup)
	}
	start := time.Now()
	if err := core.TrainRank(c, net, shard, o.unsup, o.sup, o.mergeEvery); err != nil {
		return err
	}
	if c.Rank() != 0 {
		return nil
	}
	// Same gate as DistributedTrainer.Train: calibration reads the readout,
	// which only exists after a supervised phase — and the two transports
	// must report identical metrics for identical flags.
	if o.sup > 0 {
		net.CalibrateThreshold(shard)
	}
	return report(o, net, test, enc, time.Since(start))
}

// startRankObs instruments the rank's communicator on a fresh telemetry
// registry and serves it (plus pprof) on this rank's offset of -obs-addr:
// rank r listens on port+r, so `-ranks 4 -obs-addr :9000` yields four
// scrapable endpoints 9000..9003, one per process (DESIGN.md §11).
func startRankObs(addr string, c *mpi.Comm) error {
	rankAddr, err := offsetAddr(addr, c.Rank())
	if err != nil {
		return fmt.Errorf("-obs-addr: %w", err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	obs.AttachPprof(mux)
	ln, err := net.Listen("tcp", rankAddr)
	if err != nil {
		return fmt.Errorf("rank %d obs listener: %w", c.Rank(), err)
	}
	fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		// The listener dies with the rank process; training never waits on it.
		_ = http.Serve(ln, mux)
	}()
	return nil
}

// offsetAddr shifts an explicit port by rank; port 0 (kernel-assigned) is
// left alone since distinct processes can't collide on it anyway.
func offsetAddr(addr string, rank int) (string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("port %q is not numeric: %v", portStr, err)
	}
	if port == 0 {
		return addr, nil
	}
	return net.JoinHostPort(host, strconv.Itoa(port+rank)), nil
}

// profilePath resolves -profile-out, defaulting to <cmd>.<kind>.pprof.
func profilePath(out, cmd, kind string) string {
	if out != "" || kind == "" {
		return out
	}
	return cmd + "." + kind + ".pprof"
}

// stopProfile finishes a whole-run profile, logging where it landed.
func stopProfile(prof *obs.Profile, kind string) {
	if prof == nil {
		return
	}
	if err := prof.Stop(); err != nil {
		log.Printf("profile: %v", err)
		return
	}
	log.Printf("wrote %s profile to %s", kind, prof.Path())
}

// report prints rank 0's held-out metrics and writes the serving bundle.
func report(o opts, net *core.Network, test *data.Encoded, enc *data.Encoder,
	elapsed time.Duration) error {
	acc, auc := net.Evaluate(test)
	fmt.Printf("test accuracy %.4f, AUC %.4f (train time %.1fs)\n",
		acc, auc, elapsed.Seconds())
	if o.saveBundle != "" {
		if err := serve.SaveBundleFile(o.saveBundle, net, enc); err != nil {
			return err
		}
		fmt.Printf("saved serving bundle to %s (serve with: streambrain-serve -bundle %s)\n",
			o.saveBundle, o.saveBundle)
	}
	return nil
}

// prefixWriter stamps every child output line with its rank so interleaved
// rank logs stay attributable. Used as the child's Stdout/Stderr directly:
// exec.Cmd then owns the pipe plumbing, and Wait does not return until the
// last byte has been relayed — no output-truncation race.
type prefixWriter struct {
	mu     sync.Mutex
	prefix string
	dst    io.Writer
	buf    []byte
}

func (w *prefixWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		fmt.Fprintf(w.dst, "%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
}

// flush emits any unterminated final line.
func (w *prefixWriter) flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) > 0 {
		fmt.Fprintf(w.dst, "%s%s\n", w.prefix, w.buf)
		w.buf = nil
	}
}

// rankProc is one spawned rank: its command and the channel its Wait result
// arrives on (Wait runs in a goroutine from the moment of spawning, so the
// launcher can observe an early death while doing something else).
type rankProc struct {
	cmd  *exec.Cmd
	done chan error
	out  [2]*prefixWriter
}

// launch forks o.ranks subprocesses of this binary, wiring rank 0's
// rendezvous address to the others through a temp file — the process-manager
// half of mpirun.
func launch(o opts) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "streambrain-dist")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "rendezvous")

	fmt.Printf("launching %d tcp rank processes\n", o.ranks)
	start := time.Now()
	procs := make([]*rankProc, o.ranks)
	spawn := func(rank int, extra ...string) error {
		args := append(o.toArgs(), "-rank", strconv.Itoa(rank))
		args = append(args, extra...)
		cmd := exec.Command(self, args...)
		p := &rankProc{cmd: cmd, done: make(chan error, 1)}
		p.out[0] = &prefixWriter{prefix: fmt.Sprintf("[rank %d] ", rank), dst: os.Stdout}
		p.out[1] = &prefixWriter{prefix: fmt.Sprintf("[rank %d] ", rank), dst: os.Stderr}
		cmd.Stdout, cmd.Stderr = p.out[0], p.out[1]
		if err := cmd.Start(); err != nil {
			return err
		}
		go func() { p.done <- cmd.Wait() }()
		procs[rank] = p
		return nil
	}

	if err := spawn(0, "-rendezvous-file", addrFile); err != nil {
		return err
	}
	addr, err := awaitAddr(addrFile, procs[0], 60*time.Second)
	if err != nil {
		procs[0].cmd.Process.Kill()
		<-procs[0].done
		procs[0].out[0].flush()
		procs[0].out[1].flush()
		return err
	}
	for r := 1; r < o.ranks; r++ {
		if err := spawn(r, "-rendezvous", addr); err != nil {
			for _, p := range procs[:r] {
				p.cmd.Process.Kill()
			}
			return err
		}
	}

	// Reap in completion order so one crashed rank fails the whole job
	// immediately: the survivors would otherwise sit blocked in collectives
	// until their fabric deadline expires. First failure wins (the root
	// cause dies first; the kills below only produce teardown echoes).
	type exited struct {
		rank int
		err  error
	}
	reaped := make(chan exited, o.ranks)
	for r, p := range procs {
		go func(r int, p *rankProc) { reaped <- exited{r, <-p.done} }(r, p)
	}
	var firstErr error
	for n := 0; n < o.ranks; n++ {
		e := <-reaped
		if e.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", e.rank, e.err)
			for _, p := range procs {
				p.cmd.Process.Kill() // no-op error on already-exited ranks
			}
		}
	}
	for _, p := range procs {
		p.out[0].flush()
		p.out[1].flush()
	}
	if firstErr != nil {
		return firstErr
	}
	fmt.Printf("all %d ranks done in %.1fs\n", o.ranks, time.Since(start).Seconds())
	return nil
}

// awaitAddr polls for the rendezvous address rank 0 publishes, failing fast
// when rank 0 dies first (its Wait goroutine signals done).
func awaitAddr(path string, rank0 *rankProc, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
			return string(raw), nil
		}
		select {
		case err := <-rank0.done:
			rank0.done <- err // the reap loop's receive still gets it
			return "", fmt.Errorf("rank 0 exited before publishing its rendezvous address: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	return "", fmt.Errorf("rank 0 did not publish a rendezvous address within %v", timeout)
}
