// Command streambrain-loadtest runs a named perf suite (DESIGN.md §8) and
// writes the machine-readable BENCH_<suite>.json report that
// tools/benchgate diffs against perf/baseline.json.
//
//	streambrain-loadtest -suite smoke                 # writes BENCH_smoke.json
//	streambrain-loadtest -suite full -out /tmp/b.json # measurement scale
//	streambrain-loadtest -suite serve                 # json vs binary predict codecs
//	streambrain-loadtest -suite smoke -wire binary    # force serve scenarios onto one codec
//	streambrain-loadtest -list                        # available suites
//
// Scenarios run pinned iteration counts (never wall-clock budgets), so two
// runs on the same machine do identical work and their reports diff
// meaningfully.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streambrain/internal/perf"
)

func main() {
	suite := flag.String("suite", "smoke", "perf suite to run")
	out := flag.String("out", "", "output path (default BENCH_<suite>.json)")
	runs := flag.Int("runs", 1, "suite repetitions merged by per-scenario median (use 3 when re-baselining)")
	wireSel := flag.String("wire", "", "force serve scenarios onto one predict codec: binary or json (default: as declared per scenario)")
	list := flag.Bool("list", false, "list available suites and their scenarios, then exit")
	quiet := flag.Bool("q", false, "suppress per-scenario progress on stderr")
	flag.Parse()

	switch *wireSel {
	case "", "json", "binary":
	default:
		fmt.Fprintf(os.Stderr, "streambrain-loadtest: -wire must be json or binary, got %q\n", *wireSel)
		os.Exit(1)
	}

	if *list {
		for _, name := range perf.Suites() {
			scs, err := perf.SuiteByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "streambrain-loadtest: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s (%d scenarios)\n", name, len(scs))
			for _, sc := range scs {
				fmt.Printf("  %-24s %s\n", sc.Name, sc.Kind)
			}
		}
		return
	}

	r := &perf.Runner{WireOverride: *wireSel}
	if !*quiet {
		r.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "streambrain-loadtest: "+format+"\n", args...)
		}
	}
	if *runs < 1 {
		*runs = 1
	}
	reports := make([]perf.Report, 0, *runs)
	for i := 0; i < *runs; i++ {
		rep, err := r.RunSuite(*suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "streambrain-loadtest: %v\n", err)
			os.Exit(1)
		}
		reports = append(reports, rep)
	}
	rep, err := perf.MergeMedian(reports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streambrain-loadtest: %v\n", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *suite + ".json"
	}
	if err := rep.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "streambrain-loadtest: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("suite %s on %s/%s %s (%d cpu)\n", rep.Suite, rep.GOOS, rep.GOARCH, rep.Go, rep.CPUs)
	fmt.Printf("%-24s %-12s %12s %10s %10s %10s %12s %10s\n",
		"scenario", "kind", "throughput", "p50 ms", "p95 ms", "p99 ms", "allocs/op", "avg batch")
	fmt.Println(strings.Repeat("-", 107))
	for _, res := range rep.Results {
		// avg batch is the server's own /metrics-reported amortization;
		// only serve scenarios scrape it.
		avgBatch := "-"
		if res.ServerAvgBatch > 0 {
			avgBatch = fmt.Sprintf("%.1f", res.ServerAvgBatch)
		}
		fmt.Printf("%-24s %-12s %12.1f %10.3f %10.3f %10.3f %12.1f %10s\n",
			res.Scenario, res.Kind, res.Throughput, res.P50Ms, res.P95Ms, res.P99Ms,
			res.AllocsPerOp, avgBatch)
	}
	fmt.Printf("wrote %s\n", path)
}
