// Command streambrain-router is the fleet front door (DESIGN.md §13): it
// accepts /v1/predict in JSON or the binary wire protocol and fans requests
// across N streambrain-serve replicas over persistent binary-protocol
// connections:
//
//	streambrain-router -addr :8080 -replica 127.0.0.1:9001 -replica 127.0.0.1:9002
//
// or with dynamic membership — start the router first, then point replicas
// at its fleet listener:
//
//	streambrain-router -addr :8080 -fleet-addr 127.0.0.1:7946
//	streambrain-serve -bundle model.bundle -addr 127.0.0.1:0 -join 127.0.0.1:7946
//
// Replicas are health-checked via /healthz every -health-every; -fail-after
// consecutive failures eject a replica from rotation and one successful
// probe re-admits it. Transport failures retry idempotent predicts once on
// a different replica. Beyond -max-inflight concurrently admitted requests
// the router sheds with 429 + Retry-After. -pick selects least-loaded
// (default) or hash (rendezvous-hash by request payload) routing.
// POST /v1/reload distributes a bundle to every replica (bundle-push, no
// shared filesystem needed); GET /healthz reports ok/degraded/unavailable
// with per-replica detail; GET /stats, GET /metrics, and GET /debug/traces
// mirror the streambrain-serve observability surface for the fleet tier.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streambrain/internal/fleet"
	"streambrain/internal/obs"
)

// replicaList collects repeatable -replica flags.
type replicaList []string

func (r *replicaList) String() string { return strings.Join(*r, ",") }
func (r *replicaList) Set(v string) error {
	if _, _, err := net.SplitHostPort(v); err != nil {
		return fmt.Errorf("bad replica address %q: %w", v, err)
	}
	*r = append(*r, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("streambrain-router: ")

	var replicas replicaList
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address for client traffic")
		fleetAddr   = flag.String("fleet-addr", "", "membership listen address replicas -join (empty = static membership only)")
		pick        = flag.String("pick", fleet.PickLeastLoaded, "replica pick policy: least-loaded | hash")
		maxInflight = flag.Int("max-inflight", 256, "admitted predicts in flight before shedding with 429")
		conns       = flag.Int("replica-conns", 32, "persistent connections per replica")
		healthEvery = flag.Duration("health-every", 500*time.Millisecond, "active /healthz probe interval")
		failAfter   = flag.Int("fail-after", 2, "consecutive failures before a replica is ejected")
		bundlePath  = flag.String("bundle", "", "default bundle path for POST /v1/reload pushes")
		traceEvery  = flag.Int("trace-every", 0, "sample every Nth request into /debug/traces (0 = default rate, <0 disables)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		profileKind = flag.String("profile", "", "whole-run profile written at shutdown: "+obs.ProfileKinds)
		profileOut  = flag.String("profile-out", "", "profile output path (default streambrain-router.<kind>.pprof)")
	)
	flag.Var(&replicas, "replica", "replica address host:port (repeatable)")
	flag.Parse()
	if *pick != fleet.PickLeastLoaded && *pick != fleet.PickHash {
		log.Fatalf("-pick must be %s or %s", fleet.PickLeastLoaded, fleet.PickHash)
	}
	if len(replicas) == 0 && *fleetAddr == "" {
		log.Fatal("no members: pass -replica host:port (repeatable) or -fleet-addr for dynamic joins")
	}

	prof, err := obs.StartProfile(*profileKind, profilePath(*profileOut, "streambrain-router", *profileKind))
	if err != nil {
		log.Fatal(err)
	}

	pool := fleet.NewPool(fleet.Config{
		Pick:            *pick,
		MaxInflight:     *maxInflight,
		ConnsPerReplica: *conns,
		HealthEvery:     *healthEvery,
		FailAfter:       *failAfter,
		Obs:             obs.NewRegistry(),
		TraceEvery:      *traceEvery,
	})
	for _, r := range replicas {
		pool.Add(r)
	}
	if *fleetAddr != "" {
		jln, err := net.Listen("tcp", *fleetAddr)
		if err != nil {
			log.Fatal(err)
		}
		pool.ServeJoin(jln)
		log.Printf("fleet membership on %s", jln.Addr())
	}
	router := fleet.NewRouter(pool, *bundlePath)

	mux := http.NewServeMux()
	mux.Handle("/", router.Handler())
	if *pprofOn {
		obs.AttachPprof(mux)
		log.Printf("pprof mounted at /debug/pprof/")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	// Listen explicitly rather than ListenAndServe so -addr :0 works and
	// scripts can parse the bound port from the "routing on" line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	go func() {
		log.Printf("routing on %s (%d replicas, pick %s, max-inflight %d)",
			ln.Addr(), len(replicas), *pick, *maxInflight)
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	<-ctx.Done()

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	router.Close()
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
	if prof != nil {
		log.Printf("wrote %s profile to %s", *profileKind, prof.Path())
	}
}

// profilePath resolves -profile-out, defaulting to <cmd>.<kind>.pprof.
func profilePath(out, cmd, kind string) string {
	if out != "" || kind == "" {
		return out
	}
	return cmd + "." + kind + ".pprof"
}
