// Command experiments regenerates the paper's figures and the related-work
// table (DESIGN.md §4 maps experiment ids to figures):
//
//	experiments -fig 3          # Fig 3: HCU x MCU capacity sweep
//	experiments -fig 4          # Fig 4: receptive-field sweep
//	experiments -fig 5          # Fig 5: mask evolution montage (PNG + VTI)
//	experiments -fig 1          # Fig 1: MNIST receptive fields
//	experiments -fig 2          # Fig 2: in-situ visualization snapshots
//	experiments -fig 6          # §VI:  related-work AUC comparison
//	experiments -fig 7          # E7:   semi-supervised label efficiency
//	experiments -fig 8          # E8:   precision ablation (f64/f32/posit)
//	experiments -fig 9          # E9:   distributed rank-count invariance
//	experiments -fig 10         # E10:  structural-sparsity schedule
//	experiments -fig 0          # headline numbers (hybrid 1x3000)
//
// The -events / -repeats / -mcu-cap flags trade fidelity for runtime; the
// defaults are the reduced scale recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"streambrain/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		fig     = flag.Int("fig", 3, "figure to regenerate: 0 (headline), 1-5, 6 (related-work table), 7 (label efficiency), 8 (precision ablation), 9 (distributed invariance), 10 (sparsity schedule)")
		backend = flag.String("backend", "parallel", "compute backend")
		workers = flag.Int("workers", 0, "backend workers (0 = all cores)")
		events  = flag.Int("events", 30000, "synthetic HIGGS events")
		repeats = flag.Int("repeats", 3, "repetitions per configuration (paper: 10)")
		unsup   = flag.Int("unsup-epochs", 4, "unsupervised epochs per trial")
		sup     = flag.Int("sup-epochs", 4, "supervised epochs per trial")
		mcuCap  = flag.Int("mcu-cap", 0, "cap MCUs for the reduced-scale figure runs (0 = paper values)")
		outDir  = flag.String("out", "out", "artifact directory for figure outputs")
		seed    = flag.Int64("seed", 1, "random seed")
		live    = flag.Bool("live", false, "fig 2: serve a live view and block")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Backend = *backend
	cfg.Workers = *workers
	cfg.Events = *events
	cfg.Repeats = *repeats
	cfg.UnsupEpochs = *unsup
	cfg.SupEpochs = *sup
	cfg.OutDir = *outDir
	cfg.Seed = *seed
	cfg.Out = os.Stdout

	var err error
	switch *fig {
	case 0:
		experiments.Fig3Headline(cfg)
	case 1:
		_, err = experiments.RunFig1(cfg, 0, 0, 0, 0)
	case 2:
		var res *experiments.Fig2Result
		res, err = experiments.RunFig2(cfg, *mcuCap, *live)
		if err == nil && *live {
			fmt.Printf("live view at http://%s/ — ctrl-c to stop\n", res.LiveAddr)
			select {}
		}
	case 3:
		mcus := experiments.Fig3MCUs
		if *mcuCap > 0 {
			mcus = capInts(mcus, *mcuCap)
		}
		experiments.RunFig3(cfg, nil, mcus)
	case 4:
		experiments.RunFig4(cfg, *mcuCap, nil)
	case 5:
		_, err = experiments.RunFig5(cfg, *mcuCap)
	case 6:
		experiments.RunBaselines(cfg, *mcuCap)
	case 7:
		experiments.RunLabelEfficiency(cfg, *mcuCap, nil)
	case 8:
		experiments.RunPrecision(cfg, *mcuCap)
	case 9:
		_, err = experiments.RunDistributed(cfg, *mcuCap)
	case 10:
		experiments.RunSparsity(cfg, *mcuCap)
	default:
		log.Fatalf("unknown figure %d (want 0-10)", *fig)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// capInts clamps each sweep value to the cap, deduplicating.
func capInts(xs []int, cap int) []int {
	var out []int
	seen := map[int]bool{}
	for _, x := range xs {
		if x > cap {
			x = cap
		}
		if !seen[x] {
			out = append(out, x)
			seen[x] = true
		}
	}
	return out
}
